(* The concretization algorithm (paper §3.4, Fig. 6): constraint
   intersection, virtual resolution, parameter policies, conditional
   dependencies, declared conflicts, every error class, the backtracking
   extension (§4.5), and whole-universe invariants. *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Config = Ospack_config.Config
module Concretizer = Ospack_concretize.Concretizer
module Cerror = Ospack_concretize.Cerror
module Concrete = Ospack_spec.Concrete
module Parser = Ospack_spec.Parser
module Ast = Ospack_spec.Ast
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist
module Universe = Ospack_repo.Universe

let base_packages =
  [
    make_pkg "mpileaks"
      [
        version "1.0"; version "1.1";
        depends_on "mpi"; depends_on "callpath";
        variant "debug" ~descr:"debug";
      ];
    make_pkg "callpath"
      [
        version "0.9"; version "1.0"; version "1.1";
        depends_on "dyninst"; depends_on "mpi";
        variant "debug" ~descr:"debug";
      ];
    make_pkg "dyninst"
      [ version "8.1.2"; version "8.2"; depends_on "libdwarf"; depends_on "libelf" ];
    make_pkg "libdwarf" [ version "20130729"; depends_on "libelf" ];
    make_pkg "libelf" [ version "0.8.11"; version "0.8.13" ];
    make_pkg "mpich"
      [
        version "1.4"; version "3.0.4";
        provides "mpi@:3" ~when_:"@3:";
        provides "mpi@:1" ~when_:"@1:1.9";
      ];
    make_pkg "mvapich2"
      [
        version "1.9"; version "2.0";
        provides "mpi@:2.2" ~when_:"@1.9";
        provides "mpi@:3.0" ~when_:"@2.0";
      ];
    make_pkg "openmpi" [ version "1.4.7"; version "1.8.2"; provides "mpi@:2.2" ];
    make_pkg "gerris" [ version "1.0"; depends_on "mpi@2:" ];
  ]

let compilers =
  Compilers.create
    [
      Compilers.toolchain "gcc" "4.7.3";
      Compilers.toolchain "gcc" "4.9.2";
      Compilers.toolchain "intel" "14.0.3";
      Compilers.toolchain "xl" "12.1" ~archs:[ "bgq" ];
    ]

let ctx_of ?(config = Config.empty) ?(extra = []) () =
  Concretizer.make_ctx ~config ~compilers
    (Repository.create (base_packages @ extra))

let ok ctx spec =
  match Concretizer.concretize_string ctx spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "%s failed to concretize: %s" spec e

let err_of ctx spec =
  match Concretizer.concretize ctx (Parser.parse_exn spec) with
  | Ok c -> Alcotest.failf "%s unexpectedly concretized to %s" spec (Concrete.to_string c)
  | Error e -> e

let node c name =
  match Concrete.node c name with
  | Some n -> n
  | None -> Alcotest.failf "node %s missing from %s" name (Concrete.to_string c)

let vstr v = Version.to_string v

(* Fig. 2a -> Fig. 7: an unconstrained spec becomes a full concrete DAG *)
let unconstrained_root () =
  let c = ok (ctx_of ()) "mpileaks" in
  Alcotest.(check int) "6 nodes (Fig. 7)" 6 (Concrete.node_count c);
  Alcotest.(check string) "newest mpileaks" "1.1" (vstr (node c "mpileaks").Concrete.version);
  Alcotest.(check string) "newest libelf" "0.8.13" (vstr (node c "libelf").Concrete.version);
  (* all parameters pinned; variants default to false *)
  List.iter
    (fun n ->
      Alcotest.(check string) ("arch of " ^ n.Concrete.name) "linux-x86_64" n.Concrete.arch)
    (Concrete.nodes c);
  Alcotest.(check bool) "debug defaulted off" true
    (Concrete.Smap.find_opt "debug" (node c "mpileaks").Concrete.variants = Some false);
  (* single version of each package: node names unique by construction;
     libelf appears once though reached via two paths *)
  Alcotest.(check int) "libelf in-edges" 2
    (List.length (Ospack_dag.Dag.predecessors (Concrete.to_dag c) "libelf"))

(* Fig. 2c: recursive constraints land on the right nodes *)
let recursive_constraints () =
  let c = ok (ctx_of ()) "mpileaks@1.0 ^callpath@1.0+debug ^libelf@0.8.11" in
  Alcotest.(check string) "root pinned" "1.0" (vstr (node c "mpileaks").Concrete.version);
  Alcotest.(check string) "callpath pinned" "1.0" (vstr (node c "callpath").Concrete.version);
  Alcotest.(check string) "libelf pinned" "0.8.11" (vstr (node c "libelf").Concrete.version);
  Alcotest.(check (option bool)) "callpath debug on" (Some true)
    (Concrete.Smap.find_opt "debug" (node c "callpath").Concrete.variants);
  Alcotest.(check (option bool)) "mpileaks debug untouched" (Some false)
    (Concrete.Smap.find_opt "debug" (node c "mpileaks").Concrete.variants)

let version_ranges () =
  let c = ok (ctx_of ()) "mpileaks ^dyninst@:8.1" in
  Alcotest.(check string) "range picks 8.1.2" "8.1.2"
    (vstr (node c "dyninst").Concrete.version);
  (* unknown exact version extrapolates *)
  let c = ok (ctx_of ()) "libelf@0.8.99" in
  Alcotest.(check string) "extrapolated" "0.8.99" (vstr (node c "libelf").Concrete.version)

let compiler_propagation () =
  let c = ok (ctx_of ()) "mpileaks %intel" in
  List.iter
    (fun n ->
      Alcotest.(check string) ("compiler of " ^ n.Concrete.name) "intel"
        (fst n.Concrete.compiler))
    (Concrete.nodes c);
  (* per-node override: compiler constraint on one dependency only *)
  let c = ok (ctx_of ()) "mpileaks %intel ^libelf %gcc@4.7.3" in
  Alcotest.(check string) "libelf uses gcc" "gcc" (fst (node c "libelf").Concrete.compiler);
  Alcotest.(check string) "root still intel" "intel" (fst (node c "mpileaks").Concrete.compiler);
  (* compiler version chosen newest when unconstrained *)
  let c = ok (ctx_of ()) "libelf %gcc" in
  Alcotest.(check string) "newest gcc" "4.9.2" (vstr (snd (node c "libelf").Concrete.compiler))

let arch_propagation () =
  let c = ok (ctx_of ()) "mpileaks =bgq %xl" in
  List.iter
    (fun n ->
      Alcotest.(check string) ("arch of " ^ n.Concrete.name) "bgq" n.Concrete.arch)
    (Concrete.nodes c);
  (* config default *)
  let cfg = Config.of_assoc [ ("arch", "bgq") ] in
  let c = ok (ctx_of ~config:cfg ()) "libelf %xl" in
  Alcotest.(check string) "config arch" "bgq" (node c "libelf").Concrete.arch

let virtual_resolution () =
  let ctx = ctx_of () in
  (* forcing a provider via ^ (paper §3.4) *)
  let c = ok ctx "mpileaks ^mvapich2" in
  Alcotest.(check bool) "mvapich2 chosen" true (Concrete.node c "mvapich2" <> None);
  Alcotest.(check bool) "mpi gone" true (Concrete.node c "mpi" = None);
  Alcotest.(check bool) "provided recorded" true
    (List.mem_assoc "mpi" (node c "mvapich2").Concrete.provided);
  (* provider version constrained through the interface version: gerris
     needs mpi@2:, so mpich must be 3.x (its 1.x provides only mpi@:1) *)
  let c = ok ctx "gerris ^mpich" in
  Alcotest.(check string) "mpich at 3.0.4" "3.0.4" (vstr (node c "mpich").Concrete.version);
  (* site provider preference *)
  let cfg = Config.of_assoc [ ("providers.mpi", "openmpi") ] in
  let c = ok (ctx_of ~config:cfg ()) "mpileaks" in
  Alcotest.(check bool) "openmpi preferred" true (Concrete.node c "openmpi" <> None);
  (* a virtual as the install root *)
  let c = ok ctx "mpi" in
  Alcotest.(check bool) "some provider" true
    (List.mem_assoc "mpi" (Concrete.root_node c).Concrete.provided)

let versioned_virtual_requirement () =
  (* ^mpi@2: must exclude providers that only offer mpi@:1 *)
  let ctx = ctx_of () in
  let c = ok ctx "mpileaks ^mpi@2:" in
  let provider =
    List.find
      (fun n -> List.mem_assoc "mpi" n.Concrete.provided)
      (Concrete.nodes c)
  in
  let provided = List.assoc "mpi" provider.Concrete.provided in
  Alcotest.(check bool) "provided intersects 2:" true
    (Vlist.intersects provided (Vlist.of_string "2:"))

let conditional_dependencies () =
  let extra =
    [
      make_pkg "condpkg"
        [
          version "1.0"; version "2.0";
          variant "mpi" ~descr:"parallel build";
          depends_on "mpi" ~when_:"+mpi";
          depends_on "libelf@0.8.11" ~when_:"@:1";
          depends_on "libelf@0.8.13" ~when_:"@2:";
        ];
    ]
  in
  let ctx = ctx_of ~extra () in
  let c = ok ctx "condpkg" in
  Alcotest.(check bool) "no mpi without variant" true
    (not
       (List.exists
          (fun n -> List.mem_assoc "mpi" n.Concrete.provided)
          (Concrete.nodes c)));
  Alcotest.(check string) "v2 gets newer libelf" "0.8.13"
    (vstr (node c "libelf").Concrete.version);
  let c = ok ctx "condpkg@1.0 +mpi" in
  Alcotest.(check bool) "mpi pulled by +mpi" true
    (List.exists
       (fun n -> List.mem_assoc "mpi" n.Concrete.provided)
       (Concrete.nodes c));
  Alcotest.(check string) "v1 gets older libelf" "0.8.11"
    (vstr (node c "libelf").Concrete.version)

let compiler_conditional_deps () =
  (* the paper's ROSE example: boost version depends on the compiler *)
  let extra =
    [
      make_pkg "boost" [ version "1.47.0"; version "1.55.0" ];
      make_pkg "rose-like"
        [
          version "1.0";
          depends_on "boost@1.47.0" ~when_:"%gcc@:4.7";
          depends_on "boost@1.55.0" ~when_:"%gcc@4.8:";
          depends_on "boost@1.55.0" ~when_:"%intel";
        ];
    ]
  in
  let ctx = ctx_of ~extra () in
  let c = ok ctx "rose-like %gcc@4.7.3" in
  Alcotest.(check string) "old gcc -> old boost" "1.47.0"
    (vstr (node c "boost").Concrete.version);
  let c = ok ctx "rose-like %gcc@4.9.2" in
  Alcotest.(check string) "new gcc -> new boost" "1.55.0"
    (vstr (node c "boost").Concrete.version);
  let c = ok ctx "rose-like %intel" in
  Alcotest.(check string) "intel -> new boost" "1.55.0"
    (vstr (node c "boost").Concrete.version)

let error_classes () =
  let ctx = ctx_of () in
  (match err_of ctx "nosuchpackage" with
  | Cerror.Unknown_package "nosuchpackage" -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (match err_of ctx "mpileaks +nonvariant" with
  | Cerror.Unknown_variant { package = "mpileaks"; variant = "nonvariant" } -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (match err_of ctx "libelf@2:3 @4:5" with
  | Cerror.No_version _ -> Alcotest.fail "parse should already intersect"
  | _ -> Alcotest.fail "expected failure"
  | exception Invalid_argument _ -> () (* parse-time conflict *));
  (match err_of ctx "libelf@2:3" with
  | Cerror.No_version { package = "libelf"; _ } -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (match err_of ctx "mpileaks ^mpi@9:" with
  | Cerror.No_provider { virtual_ = "mpi"; _ } -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (match err_of ctx "mpileaks %xl" with
  | Cerror.No_compiler _ -> () (* xl only exists on bgq *)
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (match err_of ctx "gerris ^mpich@1.4" with
  | Cerror.Conflict _ -> () (* needs mpi@2:, mpich@1.4 gives mpi@:1 *)
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (match err_of ctx "mpileaks ^gerris" with
  | Cerror.Unused_constraint { package = "gerris"; _ } -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e))

(* regression for the former [assert false] landmines in the version and
   provider decision sites: every pathological input must surface as a
   typed [Cerror.t], never an assertion or match failure *)
let typed_errors_never_raise () =
  let ctx = ctx_of () in
  List.iter
    (fun spec ->
      match Concretizer.concretize ctx (Parser.parse_exn spec) with
      | Ok _ | Error _ -> ()
      | exception Invalid_argument _ -> () (* parse-time conflict *)
      | exception e ->
          Alcotest.failf "%s raised %s instead of returning a typed error"
            spec (Printexc.to_string e))
    [
      "nosuchpkg";
      "mpileaks@99";
      "mpileaks@99 ^nosuchdep";
      "libelf@2:3";
      "mpi@9:";
      "mpi";
      "mpileaks ^mpi@9:";
      "gerris ^mpich@1.4";
      "gerris ^mpich@1.4 ^callpath@0.1";
      "mpileaks %xl";
      "mpileaks %xl@99";
      "mpileaks =vax";
      "mpileaks +nonvariant";
      "mpileaks ^gerris";
      "mpileaks ^callpath@9 ^dyninst@0.1";
      "mvapich2@1.9 ^mvapich2@2.0";
    ];
  (* the single-candidate and multi-candidate version decision paths both
     stay on the typed-result rails *)
  let c = ok ctx "libdwarf" in
  Alcotest.(check string) "single version candidate" "20130729"
    (Version.to_string (node c "libdwarf").Concrete.version);
  let c = ok ctx "libelf" in
  Alcotest.(check string) "multi version candidate picks newest" "0.8.13"
    (Version.to_string (node c "libelf").Concrete.version)

let declared_conflicts () =
  let extra =
    [
      make_pkg "mklish"
        [
          version "1.0";
          conflicts "=bgq" ~msg:"vendor library unavailable on BG/Q";
        ];
    ]
  in
  let ctx = ctx_of ~extra () in
  ignore (ok ctx "mklish");
  match err_of ctx "mklish =bgq %xl" with
  | Cerror.Conflict_declared { package = "mklish"; _ } -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e)

let dependency_cycles () =
  let extra =
    [
      make_pkg "cyc-a" [ version "1.0"; depends_on "cyc-b" ];
      make_pkg "cyc-b" [ version "1.0"; depends_on "cyc-a" ];
    ]
  in
  match err_of (ctx_of ~extra ()) "cyc-a" with
  | Cerror.Cycle _ -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e)

let determinism_and_hashes () =
  let ctx = ctx_of () in
  let a = ok ctx "mpileaks" and b = ok ctx "mpileaks" in
  Alcotest.(check bool) "deterministic result" true (Concrete.equal a b);
  Alcotest.(check string) "deterministic hash" (Concrete.root_hash a)
    (Concrete.root_hash b);
  (* Fig. 9: the dyninst sub-DAG is identical across MPI choices *)
  let with_mpich = ok ctx "mpileaks ^mpich" in
  let with_openmpi = ok ctx "mpileaks ^openmpi" in
  Alcotest.(check string) "shared dyninst sub-DAG"
    (Concrete.dag_hash with_mpich "dyninst")
    (Concrete.dag_hash with_openmpi "dyninst");
  Alcotest.(check bool) "roots differ" true
    (Concrete.root_hash with_mpich <> Concrete.root_hash with_openmpi)

(* §4.5: greedy fails on the hwloc pattern; backtracking recovers *)
let backtracking () =
  let extra =
    [
      make_pkg "hwloc" [ version "1.8"; version "1.9" ];
      make_pkg "a-mpi" [ version "1.0"; provides "mpi2"; depends_on "hwloc@1.8" ];
      make_pkg "z-mpi" [ version "1.0"; provides "mpi2"; depends_on "hwloc@1.9" ];
      make_pkg "pkg-p" [ version "1.0"; depends_on "mpi2"; depends_on "hwloc@1.9" ];
    ]
  in
  let ctx = ctx_of ~extra () in
  let ast = Parser.parse_exn "pkg-p" in
  (match Concretizer.concretize ctx ast with
  | Ok _ -> Alcotest.fail "greedy should conflict on hwloc"
  | Error (Cerror.Conflict _) -> ()
  | Error e -> Alcotest.failf "wrong greedy error: %s" (Cerror.to_string e));
  (match Concretizer.concretize_backtracking ctx ast with
  | Ok c ->
      Alcotest.(check string) "z-mpi chosen" "1.9"
        (vstr (node c "hwloc").Concrete.version);
      Alcotest.(check bool) "used more than one run" true
        (Concretizer.last_run_count () > 1)
  | Error e -> Alcotest.failf "backtracking failed: %s" (Cerror.to_string e));
  (* an actually unsatisfiable request still fails *)
  (match
     Concretizer.concretize_backtracking ctx
       (Parser.parse_exn "pkg-p ^a-mpi")
   with
  | Ok _ -> Alcotest.fail "unsatisfiable"
  | Error _ -> ());
  (* backtracking on a satisfiable spec returns the greedy answer *)
  match Concretizer.concretize_backtracking ctx (Parser.parse_exn "mpileaks") with
  | Ok _ -> Alcotest.(check int) "single run" 1 (Concretizer.last_run_count ())
  | Error e -> Alcotest.failf "unexpected: %s" (Cerror.to_string e)

(* §4.5 future work: compiler-feature requirements *)
let compiler_features () =
  let extra =
    [
      make_pkg "needs-cxx11"
        [ version "1.0"; requires_compiler_feature "cxx11" ];
      make_pkg "needs-cxx11-later"
        [
          version "1.0"; version "2.0";
          requires_compiler_feature "cxx11" ~when_:"@2:";
        ];
      make_pkg "needs-cuda" [ version "1.0"; requires_compiler_feature "cuda" ];
    ]
  in
  let feature_compilers =
    Compilers.create
      [
        Compilers.toolchain "gcc" "4.4.7" ~features:[ "c99" ];
        Compilers.toolchain "gcc" "4.9.2" ~features:[ "c99"; "cxx11" ];
        Compilers.toolchain "intel" "14.0.3" ~features:[ "c99"; "cxx11" ];
      ]
  in
  let ctx =
    Concretizer.make_ctx ~compilers:feature_compilers
      (Repository.create (base_packages @ extra))
  in
  let ok spec =
    match Concretizer.concretize_string ctx spec with
    | Ok c -> c
    | Error e -> Alcotest.failf "%s: %s" spec e
  in
  (* an unconstrained request lands on a cxx11-capable toolchain *)
  let c = ok "needs-cxx11" in
  Alcotest.(check string) "feature-capable gcc chosen" "4.9.2"
    (vstr (snd (node c "needs-cxx11").Concrete.compiler));
  (* an explicit %gcc@4.4.7 request cannot satisfy the feature *)
  (match err_of ctx "needs-cxx11 %gcc@4.4.7" with
  | Cerror.No_compiler { requested; _ } ->
      Alcotest.(check bool) "error names the feature" true
        (Astring.String.is_infix ~affix:"cxx11" requested)
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (* conditional requirement: v1 builds with the old gcc, v2 does not *)
  let c = ok "needs-cxx11-later@1.0 %gcc@4.4.7" in
  Alcotest.(check string) "old version tolerates old gcc" "4.4.7"
    (vstr (snd (node c "needs-cxx11-later").Concrete.compiler));
  (match err_of ctx "needs-cxx11-later@2.0 %gcc@4.4.7" with
  | Cerror.No_compiler _ -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (* no registered toolchain has cuda at all *)
  match err_of ctx "needs-cuda" with
  | Cerror.No_compiler _ -> ()
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e)

let explain_decisions () =
  let ctx = ctx_of () in
  match Concretizer.concretize_explain ctx (Parser.parse_exn "mpileaks") with
  | Error e -> Alcotest.failf "explain failed: %s" (Cerror.to_string e)
  | Ok (c, decisions) ->
      Alcotest.(check int) "same DAG as plain concretize" 6
        (Concrete.node_count c);
      Alcotest.(check bool) "provider decision reported" true
        (List.exists
           (fun d -> Astring.String.is_prefix ~affix:"virtual mpi ->" d)
           decisions);
      Alcotest.(check bool) "version decisions reported" true
        (List.exists
           (fun d ->
             Astring.String.is_prefix ~affix:"version of mpileaks ->" d)
           decisions);
      Alcotest.(check bool) "candidate counts included" true
        (List.for_all
           (fun d -> Astring.String.is_infix ~affix:"candidates" d)
           decisions);
      (* single-candidate pins are not decisions, so libdwarf (2 versions)
         appears but a 1-version package would not *)
      Alcotest.(check bool) "no spurious single-candidate entries" true
        (List.for_all
           (fun d -> not (Astring.String.is_infix ~affix:"of 1 candidates" d))
           decisions)

(* the core soundness property: a successful concretization satisfies the
   abstract spec it came from *)
let satisfies_input_property =
  let ctx =
    lazy
      (Concretizer.make_ctx ~config:Universe.default_config
         ~compilers:Universe.compilers (Universe.repository ()))
  in
  let gen =
    QCheck.Gen.(
      let pkg =
        oneofl
          [ "mpileaks"; "callpath"; "dyninst"; "libdwarf"; "libelf"; "hdf5";
            "boost"; "python"; "py-numpy"; "hypre"; "samrai"; "gperftools";
            "ares" ]
      in
      let constraint_ =
        oneofl
          [ ""; "+debug"; "~debug"; "%gcc"; "%gcc@4.7.3"; "%intel"; "@1:";
            "=bgq"; "=linux-x86_64" ]
      in
      let dep =
        oneofl
          [ ""; " ^libelf@0.8.12"; " ^mvapich2"; " ^openmpi"; " ^zlib";
            " ^mpi@2:"; " ^boost@1.55.0" ]
      in
      let* p = pkg in
      let* c = constraint_ in
      let* d = dep in
      return (p ^ c ^ d))
  in
  QCheck.Test.make ~count:250
    ~name:"concretize result satisfies its abstract input"
    (QCheck.make ~print:(fun s -> s) gen)
    (fun spec ->
      match Parser.parse spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok ast -> (
          match Concretizer.concretize (Lazy.force ctx) ast with
          | Error _ -> true (* failing is allowed; lying is not *)
          | Ok c ->
              Concrete.satisfies c ast
              (* and determinism *)
              && (match Concretizer.concretize (Lazy.force ctx) ast with
                 | Ok c2 -> Concrete.equal c c2
                 | Error _ -> false)))

(* --- whole-universe invariants --- *)

let universe_ctx () =
  Concretizer.make_ctx ~config:Universe.default_config
    ~compilers:Universe.compilers (Universe.repository ())

let universe_concretizes () =
  let ctx = universe_ctx () in
  let failures = ref [] in
  List.iter
    (fun name ->
      (* vendor MPIs only exist on their machines *)
      let spec =
        match name with
        | "bgq-mpi" -> "bgq-mpi =bgq %gcc"
        | "cray-mpi" -> "cray-mpi =cray_xe6 %gcc"
        | n -> n
      in
      match Concretizer.concretize_string ctx spec with
      | Ok c ->
          (* every node fully concrete and every dep edge present *)
          List.iter
            (fun n ->
              List.iter
                (fun d ->
                  if Concrete.node c d = None then
                    failures := (name ^ ": missing " ^ d) :: !failures)
                n.Concrete.deps)
            (Concrete.nodes c)
      | Error e -> failures := (name ^ ": " ^ e) :: !failures)
    (Repository.package_names (Universe.repository ()));
  Alcotest.(check (list string)) "no failures" [] !failures

let multi_virtual_provider () =
  (* one package providing two interfaces (mkl: blas + lapack-interface) *)
  let ctx = universe_ctx () in
  let cfg_mkl =
    Config.layer
      [
        Config.of_assoc
          [
            ("providers.blas", "mkl");
            ("providers.lapack-interface", "mkl");
          ];
        Universe.default_config;
      ]
  in
  let ctx_mkl =
    Concretizer.make_ctx ~config:cfg_mkl ~compilers:Universe.compilers
      (Ospack_repo.Universe.repository ())
  in
  let c = ok ctx_mkl "py-numpy" in
  let mkl = node c "mkl" in
  Alcotest.(check bool) "mkl provides blas here" true
    (List.mem_assoc "blas" mkl.Concrete.provided);
  (* default config keeps netlib-blas *)
  let c = ok ctx "py-numpy" in
  Alcotest.(check bool) "default provider is netlib-blas" true
    (Concrete.node c "netlib-blas" <> None)

let proxy_app_openmp () =
  (* period-accurate: clang 3.5 has no OpenMP, so threaded proxy-app
     builds must reject it while gcc/xl work *)
  let ctx = universe_ctx () in
  ignore (ok ctx "lulesh +openmp %gcc");
  ignore (ok ctx "lulesh +openmp %xl =bgq ^bgq-mpi");
  (match err_of ctx "lulesh +openmp %clang" with
  | Cerror.No_compiler { requested; _ } ->
      Alcotest.(check bool) "openmp feature named" true
        (Astring.String.is_infix ~affix:"openmp" requested)
  | e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e));
  (* without the variant, clang is fine *)
  ignore (ok ctx "lulesh ~openmp %clang")

let universe_census () =
  Alcotest.(check int) "245 packages" 245
    (Repository.count (Universe.repository ()));
  let ctx = universe_ctx () in
  let c = ok ctx "ares" in
  Alcotest.(check int) "ARES DAG is 47 nodes (Fig. 13)" 47
    (Concrete.node_count c);
  (* paper Table 3 families all concretize *)
  List.iter
    (fun config ->
      ignore (ok ctx (Ospack_repo.Pkgs_ares.spec_of_config config)))
    [ `Current; `Previous; `Lite; `Dev ]

let () =
  Alcotest.run "concretize"
    [
      ( "basics",
        [
          Alcotest.test_case "unconstrained root (Figs. 2a/7)" `Quick
            unconstrained_root;
          Alcotest.test_case "recursive constraints (Fig. 2c)" `Quick
            recursive_constraints;
          Alcotest.test_case "version ranges + extrapolation" `Quick
            version_ranges;
          Alcotest.test_case "compiler propagation" `Quick compiler_propagation;
          Alcotest.test_case "architecture propagation" `Quick arch_propagation;
        ] );
      ( "virtuals",
        [
          Alcotest.test_case "provider resolution" `Quick virtual_resolution;
          Alcotest.test_case "versioned interface requirement" `Quick
            versioned_virtual_requirement;
        ] );
      ( "conditionals",
        [
          Alcotest.test_case "when= dependencies" `Quick conditional_dependencies;
          Alcotest.test_case "ROSE-style compiler conditions" `Quick
            compiler_conditional_deps;
        ] );
      ( "failures",
        [
          Alcotest.test_case "error classes" `Quick error_classes;
          Alcotest.test_case "typed errors, never assertions" `Quick
            typed_errors_never_raise;
          Alcotest.test_case "declared conflicts" `Quick declared_conflicts;
          Alcotest.test_case "dependency cycles" `Quick dependency_cycles;
        ] );
      ( "guarantees",
        [
          Alcotest.test_case "determinism and sub-DAG sharing (Fig. 9)" `Quick
            determinism_and_hashes;
          Alcotest.test_case "backtracking solver (§4.5)" `Quick backtracking;
          Alcotest.test_case "compiler features (§4.5)" `Quick
            compiler_features;
          Alcotest.test_case "decision explanations" `Quick explain_decisions;
          QCheck_alcotest.to_alcotest satisfies_input_property;
        ] );
      ( "universe",
        [
          Alcotest.test_case "all 245 packages concretize" `Quick
            universe_concretizes;
          Alcotest.test_case "multi-interface providers (mkl)" `Quick
            multi_virtual_provider;
          Alcotest.test_case "proxy apps: OpenMP feature gate" `Quick
            proxy_app_openmp;
          Alcotest.test_case "ARES census (Fig. 13, Table 3)" `Quick
            universe_census;
        ] );
    ]
