(* The Merkle-fingerprinted concretization cache: base-fingerprint
   sensitivity to the shared declarative inputs, per-entry fingerprint
   sensitivity to exactly the dependency closure (plus virtual provider
   sets), lookup/store/seed semantics, and validated persistence — a
   recipe edit evicts only the entries that can see it, wholesale
   mismatches and corruption discard everything, and a stale entry is
   never trusted. *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Config = Ospack_config.Config
module Concretizer = Ospack_concretize.Concretizer
module Ccache = Ospack_concretize.Ccache
module Concrete = Ospack_spec.Concrete
module Parser = Ospack_spec.Parser
module Obs = Ospack_obs.Obs
module Vfs = Ospack_vfs.Vfs
module Json = Ospack_json.Json

let base_packages () =
  [
    make_pkg "app"
      [
        version "1.0"; version "2.0";
        depends_on "libx"; depends_on "mpi";
        variant "debug" ~descr:"debug symbols";
      ];
    make_pkg "libx" [ version "0.5"; version "0.6" ];
    make_pkg "mympi"
      [ version "1.9"; version "2.1"; provides "mpi@:2.2" ];
  ]

let bump_libx packages =
  make_pkg "libx" [ version "0.5"; version "0.6"; version "0.7" ]
  :: List.filter (fun p -> p.p_name <> "libx") packages

let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ]

let mk_context ?(config = Config.empty) ?(comps = compilers) ?backend packages
    =
  Ccache.context ?backend ~repo:(Repository.create packages) ~compilers:comps
    ~config ()

let base ?config ?comps ?backend packages =
  Ccache.base_fingerprint (mk_context ?config ?comps ?backend packages)

let ctx_of ?(config = Config.empty) ?obs packages =
  Concretizer.make_ctx ~config ?obs ~compilers
    (Repository.create packages)

let parse = Parser.parse_exn

let concretize_ok ?cache ?installed ctx spec =
  match Concretizer.concretize_cached ?cache ?installed ctx (parse spec) with
  | Ok c -> c
  | Error e ->
      Alcotest.failf "%s failed to concretize: %s" spec
        (Ospack_concretize.Cerror.to_string e)

(* --- base fingerprint sensitivity --- *)

let base_deterministic () =
  Alcotest.(check string) "same inputs, same base"
    (base (base_packages ()))
    (base (base_packages ()));
  Alcotest.(check int) "64 hex chars" 64
    (String.length (base (base_packages ())));
  (* recipes are covered per entry, not by the base: a recipe edit must
     not discard the whole cache *)
  Alcotest.(check string) "recipe edit leaves the base alone"
    (base (base_packages ()))
    (base (bump_libx (base_packages ())))

let base_compiler_mutation () =
  let b = base (base_packages ()) in
  let more =
    Compilers.create
      [ Compilers.toolchain "gcc" "4.9.2"; Compilers.toolchain "intel" "15.0" ]
  in
  Alcotest.(check bool) "extra toolchain changes base" true
    (base ~comps:more (base_packages ()) <> b);
  let newer = Compilers.create [ Compilers.toolchain "gcc" "5.3.0" ] in
  Alcotest.(check bool) "toolchain version changes base" true
    (base ~comps:newer (base_packages ()) <> b)

let base_config_mutation () =
  let b = base (base_packages ()) in
  (* any config key participates: the concretization policy reads its
     preferences from here, so covering the config covers the policy *)
  let prefer = Config.of_assoc [ ("prefer_compiler", "intel") ] in
  Alcotest.(check bool) "policy config changes base" true
    (base ~config:prefer (base_packages ()) <> b)

let base_backend_tag () =
  (* the selected concretizer backend extends the algorithm tag: entries
     produced by one backend are never served to another, so switching
     backends is a guaranteed cache miss *)
  let packages = base_packages () in
  let greedy_default = base packages in
  let greedy_explicit = base ~backend:"greedy" packages in
  let clauses = base ~backend:"clauses" packages in
  Alcotest.(check string) "default backend is greedy" greedy_default
    greedy_explicit;
  Alcotest.(check bool) "clauses backend changes base" true
    (clauses <> greedy_default)

(* --- per-entry Merkle fingerprint sensitivity --- *)

let entry_closure_sensitivity () =
  let packages = base_packages () in
  let app = concretize_ok (ctx_of packages) "app@1.0" in
  let lib = concretize_ok (ctx_of packages) "libx" in
  let cx0 = mk_context packages in
  Alcotest.(check int) "64 hex chars" 64
    (String.length (Ccache.entry_fingerprint cx0 app));
  Alcotest.(check string) "deterministic"
    (Ccache.entry_fingerprint cx0 app)
    (Ccache.entry_fingerprint (mk_context packages) app);
  (* adding a version to libx is the classic recipe edit: the old pin
     could be suboptimal, so every closure containing libx must change *)
  let cxb = mk_context (bump_libx packages) in
  Alcotest.(check bool) "libx edit reaches app's closure" true
    (Ccache.entry_fingerprint cxb app <> Ccache.entry_fingerprint cx0 app);
  Alcotest.(check bool) "libx edit reaches the libx entry" true
    (Ccache.entry_fingerprint cxb lib <> Ccache.entry_fingerprint cx0 lib);
  (* a package outside the closure is invisible to the fingerprint *)
  let unrelated = make_pkg "bystander" [ version "1.0" ] :: packages in
  let cxu = mk_context unrelated in
  Alcotest.(check string) "unrelated recipe leaves app alone"
    (Ccache.entry_fingerprint cx0 app)
    (Ccache.entry_fingerprint cxu app)

let entry_provider_sensitivity () =
  (* soundness corner: a new provider of a virtual the closure uses can
     flip provider selection even though the stored DAG never contained
     it, so it must invalidate — while entries that use no such virtual
     survive *)
  let packages = base_packages () in
  let app = concretize_ok (ctx_of packages) "app@1.0" in
  let lib = concretize_ok (ctx_of packages) "libx" in
  let cx0 = mk_context packages in
  let with_rival =
    make_pkg "othermpi" [ version "9.0"; provides "mpi@:3" ] :: packages
  in
  let cxr = mk_context with_rival in
  Alcotest.(check bool) "new mpi provider invalidates app" true
    (Ccache.entry_fingerprint cxr app <> Ccache.entry_fingerprint cx0 app);
  Alcotest.(check string) "new mpi provider leaves libx alone"
    (Ccache.entry_fingerprint cx0 lib)
    (Ccache.entry_fingerprint cxr lib)

(* --- lookup / store / seeds --- *)

let lookup_store_semantics () =
  let obs = Obs.create () in
  let packages = base_packages () in
  let cache = Ccache.create ~obs ~context:(mk_context packages) () in
  let ctx = ctx_of packages in
  let ast = parse "app@1.0+debug" in
  Alcotest.(check bool) "cold lookup misses" true
    (Ccache.lookup cache ast = None);
  let c = concretize_ok ~cache ctx "app@1.0+debug" in
  Alcotest.(check int) "one authoritative entry" 1 (Ccache.length cache);
  (match Ccache.lookup cache ast with
  | Some c' -> Alcotest.(check bool) "hit equals stored" true (Concrete.equal c c')
  | None -> Alcotest.fail "warm lookup should hit");
  (* the same AST spelled differently shares the canonical key *)
  (match Ccache.lookup cache (parse "app +debug @1.0") with
  | Some _ -> ()
  | None -> Alcotest.fail "canonicalized spelling should hit");
  Alcotest.(check int) "misses counted" 2 (Obs.counter obs "ccache.misses");
  Alcotest.(check bool) "hits counted" true (Obs.counter obs "ccache.hits" >= 2);
  (* every node of the stored DAG became an advisory seed... *)
  let seed_names = List.map fst (Ccache.seeds cache) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " seeded") true (List.mem n seed_names))
    [ "app"; "libx"; "mympi" ];
  (* ...but seeds are never whole-query answers: libx has a seed yet its
     own query still misses *)
  Alcotest.(check bool) "seed is not an entry" true
    (Ccache.lookup cache (parse "libx") = None)

let cached_equals_cold () =
  let packages = base_packages () in
  let cache = Ccache.create ~context:(mk_context packages) () in
  let ctx = ctx_of packages in
  List.iter
    (fun spec ->
      let cold =
        match Concretizer.concretize ctx (parse spec) with
        | Ok c -> c
        | Error _ -> Alcotest.failf "%s should concretize" spec
      in
      let first = concretize_ok ~cache ctx spec in
      let warm = concretize_ok ~cache ctx spec in
      Alcotest.(check bool) (spec ^ ": cached = cold") true
        (Concrete.equal cold first && Concrete.equal cold warm))
    [ "app"; "app@1.0"; "app+debug"; "libx"; "mympi@1.9"; "mpi" ]

let reuse_layer () =
  let obs = Obs.create () in
  let packages = base_packages () in
  let cache = Ccache.create ~obs ~context:(mk_context packages) () in
  (* reuse_hits is recorded on the concretizer context's sink *)
  let ctx = ctx_of ~obs packages in
  let installed_spec = concretize_ok ctx "app@1.0" in
  let installed ast =
    if Concrete.satisfies installed_spec ast then Some installed_spec else None
  in
  let entries_before = Ccache.length cache in
  let got = concretize_ok ~cache ~installed ctx "app" in
  Alcotest.(check bool) "reuse returns the installed spec as-is" true
    (Concrete.equal got installed_spec);
  Alcotest.(check int) "reuse hit counted" 1
    (Obs.counter obs "ccache.reuse_hits");
  Alcotest.(check int) "reuse result not stored back" entries_before
    (Ccache.length cache);
  (* a query the store cannot satisfy falls through to the solver *)
  let solved = concretize_ok ~cache ~installed ctx "app@2.0" in
  Alcotest.(check bool) "fallthrough solves fresh" true
    (not (Concrete.equal solved installed_spec))

(* --- persistence and invalidation --- *)

let save_load_roundtrip () =
  let packages = base_packages () in
  let cx = mk_context packages in
  let cache = Ccache.create ~context:cx () in
  let ctx = ctx_of packages in
  let c = concretize_ok ~cache ctx "app@1.0" in
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  (match Ccache.save cache fs ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  Alcotest.(check bool) "no temp file left behind" false
    (Vfs.exists fs (path ^ ".tmp"));
  let obs = Obs.create () in
  let reloaded = Ccache.load ~obs ~context:cx fs ~path in
  Alcotest.(check int) "entries survive" 1 (Ccache.length reloaded);
  (match Ccache.lookup reloaded (parse "app@1.0") with
  | Some c' ->
      Alcotest.(check bool) "reloaded entry identical" true (Concrete.equal c c')
  | None -> Alcotest.fail "reloaded cache should hit");
  Alcotest.(check bool) "seeds rebuilt from entries" true
    (List.mem_assoc "libx" (Ccache.seeds reloaded));
  Alcotest.(check int) "clean load is not an invalidation" 0
    (Obs.counter obs "ccache.invalidations")

let unrelated_edit_survival () =
  (* THE point of per-entry fingerprints: editing one recipe evicts only
     the entries whose closure can see it — unrelated entries stay live
     across the reload, and invalidations count evicted entries only *)
  let packages = base_packages () in
  let cache = Ccache.create ~context:(mk_context packages) () in
  let ctx = ctx_of packages in
  ignore (concretize_ok ~cache ctx "app@1.0");
  ignore (concretize_ok ~cache ctx "mympi@2.1");
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  (match Ccache.save cache fs ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  (* libx is in app's closure but not mympi's *)
  let obs = Obs.create () in
  let cx' = mk_context (bump_libx packages) in
  let reloaded = Ccache.load ~obs ~context:cx' fs ~path in
  Alcotest.(check int) "exactly the app entry evicted" 1
    (Obs.counter obs "ccache.invalidations");
  Alcotest.(check int) "the unrelated entry survives" 1
    (Ccache.length reloaded);
  Alcotest.(check bool) "survivor is servable" true
    (Ccache.lookup reloaded (parse "mympi@2.1") <> None);
  Alcotest.(check bool) "evicted entry is not served" true
    (Ccache.lookup reloaded (parse "app@1.0") = None);
  (* seeds are harvested from survivors only: no stale libx pin *)
  Alcotest.(check bool) "no seed from the evicted closure" false
    (List.mem_assoc "libx" (Ccache.seeds reloaded))

let wholesale_base_mismatch () =
  let packages = base_packages () in
  let cache = Ccache.create ~context:(mk_context packages) () in
  let ctx = ctx_of packages in
  ignore (concretize_ok ~cache ctx "app@1.0");
  ignore (concretize_ok ~cache ctx "libx");
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  (match Ccache.save cache fs ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  (* a config change shifts the base fingerprint: every entry is lost,
     and the counter says so per entry *)
  let prefer = Config.of_assoc [ ("prefer_compiler", "intel") ] in
  let obs = Obs.create () in
  let reloaded =
    Ccache.load ~obs ~context:(mk_context ~config:prefer packages) fs ~path
  in
  Alcotest.(check int) "everything discarded" 0 (Ccache.length reloaded);
  Alcotest.(check int) "one invalidation per lost entry" 2
    (Obs.counter obs "ccache.invalidations");
  Alcotest.(check bool) "no stale entry served" true
    (Ccache.lookup reloaded (parse "app@1.0") = None)

let corrupt_cache_ignored () =
  let cx = mk_context (base_packages ()) in
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  let load_counting content =
    (match Vfs.write_file fs path content with
    | Ok () -> ()
    | Error e -> Alcotest.failf "write: %s" (Vfs.error_to_string e));
    let obs = Obs.create () in
    let c = Ccache.load ~obs ~context:cx fs ~path in
    (Ccache.length c, Obs.counter obs "ccache.invalidations")
  in
  let b = Ccache.base_fingerprint cx in
  Alcotest.(check (pair int int)) "unparsable JSON" (0, 1)
    (load_counting "{ not json");
  Alcotest.(check (pair int int)) "wrong shape" (0, 1)
    (load_counting "[1, 2, 3]");
  Alcotest.(check (pair int int)) "future format version" (0, 1)
    (load_counting
       (Printf.sprintf "{\"format\": 99, \"base\": %S, \"entries\": []}" b));
  Alcotest.(check (pair int int)) "pre-Merkle format 1 cache" (0, 1)
    (load_counting
       (Printf.sprintf
          "{\"format\": 1, \"fingerprint\": %S, \"entries\": []}" b));
  Alcotest.(check (pair int int)) "entry that is not a concrete spec" (0, 1)
    (load_counting
       (Printf.sprintf
          "{\"format\": 2, \"base\": %S, \"entries\": [{\"spec\": \"app\", \
           \"merkle\": \"deadbeef\", \"concrete\": 42}]}"
          b));
  Alcotest.(check (pair int int)) "tampered merkle field" (0, 1)
    (load_counting
       (let cache = Ccache.create ~context:cx () in
        ignore (concretize_ok ~cache (ctx_of (base_packages ())) "libx");
        (* corrupt the recorded fingerprint without touching the DAG *)
        let rec tamper = function
          | Json.Obj fields ->
              Json.Obj
                (List.map
                   (fun (k, v) ->
                     if k = "merkle" then (k, Json.String "0deadbeef")
                     else (k, tamper v))
                   fields)
          | Json.List l -> Json.List (List.map tamper l)
          | j -> j
        in
        Json.to_string (tamper (Ccache.to_json cache))));
  (* a missing file is an empty cache, not corruption *)
  let obs = Obs.create () in
  let c = Ccache.load ~obs ~context:cx fs ~path:"/store/absent.json" in
  Alcotest.(check int) "missing file is empty" 0 (Ccache.length c);
  Alcotest.(check int) "missing file is not an invalidation" 0
    (Obs.counter obs "ccache.invalidations")

let mutation_forces_miss_end_to_end () =
  (* the full cycle a user sees: concretize, persist, edit a recipe,
     concretize again — the second run must re-solve, not replay *)
  let packages = base_packages () in
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  let cache = Ccache.create ~context:(mk_context packages) () in
  let c1 = concretize_ok ~cache (ctx_of packages) "libx" in
  (match Ccache.save cache fs ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  Alcotest.(check string) "cold pick is newest" "0.6"
    (Ospack_version.Version.to_string (Concrete.root_node c1).Concrete.version);
  let bumped = bump_libx packages in
  let obs = Obs.create () in
  let cache2 = Ccache.load ~obs ~context:(mk_context bumped) fs ~path in
  let c2 = concretize_ok ~cache:cache2 (ctx_of bumped) "libx" in
  Alcotest.(check int) "stale entry invalidated" 1
    (Obs.counter obs "ccache.invalidations");
  Alcotest.(check int) "second run is a miss" 1
    (Obs.counter obs "ccache.misses");
  Alcotest.(check string) "re-solve sees the new version" "0.7"
    (Ospack_version.Version.to_string (Concrete.root_node c2).Concrete.version)

let () =
  Alcotest.run "ccache"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "base deterministic" `Quick base_deterministic;
          Alcotest.test_case "compiler mutation" `Quick base_compiler_mutation;
          Alcotest.test_case "config mutation" `Quick base_config_mutation;
          Alcotest.test_case "backend tag" `Quick base_backend_tag;
          Alcotest.test_case "entry closure sensitivity" `Quick
            entry_closure_sensitivity;
          Alcotest.test_case "entry provider sensitivity" `Quick
            entry_provider_sensitivity;
        ] );
      ( "memo",
        [
          Alcotest.test_case "lookup/store/seeds" `Quick lookup_store_semantics;
          Alcotest.test_case "cached = cold" `Quick cached_equals_cold;
          Alcotest.test_case "store-aware reuse" `Quick reuse_layer;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load round-trip" `Quick save_load_roundtrip;
          Alcotest.test_case "unrelated edit survival" `Quick
            unrelated_edit_survival;
          Alcotest.test_case "wholesale base mismatch" `Quick
            wholesale_base_mismatch;
          Alcotest.test_case "corrupt cache ignored" `Quick
            corrupt_cache_ignored;
          Alcotest.test_case "recipe edit forces re-solve" `Quick
            mutation_forces_miss_end_to_end;
        ] );
    ]
