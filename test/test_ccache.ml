(* The fingerprinted concretization cache: fingerprint sensitivity to
   every declarative input, lookup/store/seed semantics, validated
   persistence (stale and corrupt caches are discarded, never trusted),
   and the cached-concretization entry point's three layers. *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Config = Ospack_config.Config
module Concretizer = Ospack_concretize.Concretizer
module Ccache = Ospack_concretize.Ccache
module Concrete = Ospack_spec.Concrete
module Parser = Ospack_spec.Parser
module Obs = Ospack_obs.Obs
module Vfs = Ospack_vfs.Vfs
module Json = Ospack_json.Json

let base_packages () =
  [
    make_pkg "app"
      [
        version "1.0"; version "2.0";
        depends_on "libx"; depends_on "mpi";
        variant "debug" ~descr:"debug symbols";
      ];
    make_pkg "libx" [ version "0.5"; version "0.6" ];
    make_pkg "mympi"
      [ version "1.9"; version "2.1"; provides "mpi@:2.2" ];
  ]

let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ]

let fp ?(config = Config.empty) ?(comps = compilers) ?backend packages =
  Ccache.fingerprint ?backend ~repo:(Repository.create packages)
    ~compilers:comps ~config ()

let ctx_of ?(config = Config.empty) ?obs packages =
  Concretizer.make_ctx ~config ?obs ~compilers
    (Repository.create packages)

let parse = Parser.parse_exn

let concretize_ok ?cache ?installed ctx spec =
  match Concretizer.concretize_cached ?cache ?installed ctx (parse spec) with
  | Ok c -> c
  | Error e ->
      Alcotest.failf "%s failed to concretize: %s" spec
        (Ospack_concretize.Cerror.to_string e)

(* --- fingerprint sensitivity --- *)

let fingerprint_deterministic () =
  Alcotest.(check string) "same inputs, same fingerprint"
    (fp (base_packages ()))
    (fp (base_packages ()));
  Alcotest.(check int) "64 hex chars" 64 (String.length (fp (base_packages ())))

let fingerprint_recipe_mutation () =
  let base = fp (base_packages ()) in
  (* adding a version to one package is the classic recipe edit: the old
     cache could hold a now-suboptimal pin and must be invalidated *)
  let bumped =
    make_pkg "libx" [ version "0.5"; version "0.6"; version "0.7" ]
    :: List.filter (fun p -> p.p_name <> "libx") (base_packages ())
  in
  Alcotest.(check bool) "new version changes fingerprint" true
    (fp bumped <> base);
  (* so does a new dependency edge *)
  let rewired =
    make_pkg "libx" [ version "0.5"; version "0.6"; depends_on "mympi" ]
    :: List.filter (fun p -> p.p_name <> "libx") (base_packages ())
  in
  Alcotest.(check bool) "new dependency changes fingerprint" true
    (fp rewired <> base);
  (* and a variant default flip *)
  let flipped =
    make_pkg "app"
      [
        version "1.0"; version "2.0";
        depends_on "libx"; depends_on "mpi";
        variant "debug" ~default:true ~descr:"debug symbols";
      ]
    :: List.filter (fun p -> p.p_name <> "app") (base_packages ())
  in
  Alcotest.(check bool) "variant default changes fingerprint" true
    (fp flipped <> base)

let fingerprint_compiler_mutation () =
  let base = fp (base_packages ()) in
  let more =
    Compilers.create
      [ Compilers.toolchain "gcc" "4.9.2"; Compilers.toolchain "intel" "15.0" ]
  in
  Alcotest.(check bool) "extra toolchain changes fingerprint" true
    (fp ~comps:more (base_packages ()) <> base);
  let newer = Compilers.create [ Compilers.toolchain "gcc" "5.3.0" ] in
  Alcotest.(check bool) "toolchain version changes fingerprint" true
    (fp ~comps:newer (base_packages ()) <> base)

let fingerprint_config_mutation () =
  let base = fp (base_packages ()) in
  (* any config key participates: the concretization policy reads its
     preferences from here, so covering the config covers the policy *)
  let prefer = Config.of_assoc [ ("prefer_compiler", "intel") ] in
  Alcotest.(check bool) "policy config changes fingerprint" true
    (fp ~config:prefer (base_packages ()) <> base)

let fingerprint_backend_tag () =
  (* the selected concretizer backend extends the algorithm tag: entries
     produced by one backend are never served to another, so switching
     backends is a guaranteed cache miss *)
  let packages = base_packages () in
  let greedy_default = fp packages in
  let greedy_explicit = fp ~backend:"greedy" packages in
  let clauses = fp ~backend:"clauses" packages in
  Alcotest.(check string) "default backend is greedy" greedy_default
    greedy_explicit;
  Alcotest.(check bool) "clauses backend changes fingerprint" true
    (clauses <> greedy_default)

(* --- lookup / store / seeds --- *)

let lookup_store_semantics () =
  let obs = Obs.create () in
  let packages = base_packages () in
  let cache = Ccache.create ~obs ~fingerprint:(fp packages) () in
  let ctx = ctx_of packages in
  let ast = parse "app@1.0+debug" in
  Alcotest.(check bool) "cold lookup misses" true
    (Ccache.lookup cache ast = None);
  let c = concretize_ok ~cache ctx "app@1.0+debug" in
  Alcotest.(check int) "one authoritative entry" 1 (Ccache.length cache);
  (match Ccache.lookup cache ast with
  | Some c' -> Alcotest.(check bool) "hit equals stored" true (Concrete.equal c c')
  | None -> Alcotest.fail "warm lookup should hit");
  (* the same AST spelled differently shares the canonical key *)
  (match Ccache.lookup cache (parse "app +debug @1.0") with
  | Some _ -> ()
  | None -> Alcotest.fail "canonicalized spelling should hit");
  Alcotest.(check int) "misses counted" 2 (Obs.counter obs "ccache.misses");
  Alcotest.(check bool) "hits counted" true (Obs.counter obs "ccache.hits" >= 2);
  (* every node of the stored DAG became an advisory seed... *)
  let seed_names = List.map fst (Ccache.seeds cache) in
  List.iter
    (fun n ->
      Alcotest.(check bool) (n ^ " seeded") true (List.mem n seed_names))
    [ "app"; "libx"; "mympi" ];
  (* ...but seeds are never whole-query answers: libx has a seed yet its
     own query still misses *)
  Alcotest.(check bool) "seed is not an entry" true
    (Ccache.lookup cache (parse "libx") = None)

let cached_equals_cold () =
  let packages = base_packages () in
  let cache = Ccache.create ~fingerprint:(fp packages) () in
  let ctx = ctx_of packages in
  List.iter
    (fun spec ->
      let cold =
        match Concretizer.concretize ctx (parse spec) with
        | Ok c -> c
        | Error _ -> Alcotest.failf "%s should concretize" spec
      in
      let first = concretize_ok ~cache ctx spec in
      let warm = concretize_ok ~cache ctx spec in
      Alcotest.(check bool) (spec ^ ": cached = cold") true
        (Concrete.equal cold first && Concrete.equal cold warm))
    [ "app"; "app@1.0"; "app+debug"; "libx"; "mympi@1.9"; "mpi" ]

let reuse_layer () =
  let obs = Obs.create () in
  let packages = base_packages () in
  let cache = Ccache.create ~obs ~fingerprint:(fp packages) () in
  (* reuse_hits is recorded on the concretizer context's sink *)
  let ctx = ctx_of ~obs packages in
  let installed_spec = concretize_ok ctx "app@1.0" in
  let installed ast =
    if Concrete.satisfies installed_spec ast then Some installed_spec else None
  in
  let entries_before = Ccache.length cache in
  let got = concretize_ok ~cache ~installed ctx "app" in
  Alcotest.(check bool) "reuse returns the installed spec as-is" true
    (Concrete.equal got installed_spec);
  Alcotest.(check int) "reuse hit counted" 1
    (Obs.counter obs "ccache.reuse_hits");
  Alcotest.(check int) "reuse result not stored back" entries_before
    (Ccache.length cache);
  (* a query the store cannot satisfy falls through to the solver *)
  let solved = concretize_ok ~cache ~installed ctx "app@2.0" in
  Alcotest.(check bool) "fallthrough solves fresh" true
    (not (Concrete.equal solved installed_spec))

(* --- persistence and invalidation --- *)

let save_load_roundtrip () =
  let packages = base_packages () in
  let fingerprint = fp packages in
  let cache = Ccache.create ~fingerprint () in
  let ctx = ctx_of packages in
  let c = concretize_ok ~cache ctx "app@1.0" in
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  (match Ccache.save cache fs ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  Alcotest.(check bool) "no temp file left behind" false
    (Vfs.exists fs (path ^ ".tmp"));
  let obs = Obs.create () in
  let reloaded = Ccache.load ~obs ~fingerprint fs ~path in
  Alcotest.(check int) "entries survive" 1 (Ccache.length reloaded);
  (match Ccache.lookup reloaded (parse "app@1.0") with
  | Some c' ->
      Alcotest.(check bool) "reloaded entry identical" true (Concrete.equal c c')
  | None -> Alcotest.fail "reloaded cache should hit");
  Alcotest.(check bool) "seeds rebuilt from entries" true
    (List.mem_assoc "libx" (Ccache.seeds reloaded));
  Alcotest.(check int) "clean load is not an invalidation" 0
    (Obs.counter obs "ccache.invalidations")

let stale_fingerprint_discarded () =
  let packages = base_packages () in
  let cache = Ccache.create ~fingerprint:(fp packages) () in
  let ctx = ctx_of packages in
  ignore (concretize_ok ~cache ctx "app@1.0");
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  (match Ccache.save cache fs ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  (* mutate the universe: the persisted cache is now stale *)
  let mutated =
    make_pkg "libx" [ version "0.5"; version "0.6"; version "0.9" ]
    :: List.filter (fun p -> p.p_name <> "libx") packages
  in
  let obs = Obs.create () in
  let reloaded = Ccache.load ~obs ~fingerprint:(fp mutated) fs ~path in
  Alcotest.(check int) "stale cache discarded wholesale" 0
    (Ccache.length reloaded);
  Alcotest.(check int) "invalidation counted" 1
    (Obs.counter obs "ccache.invalidations");
  Alcotest.(check bool) "no stale entry served" true
    (Ccache.lookup reloaded (parse "app@1.0") = None)

let corrupt_cache_ignored () =
  let fingerprint = fp (base_packages ()) in
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  let load_counting content =
    (match Vfs.write_file fs path content with
    | Ok () -> ()
    | Error e -> Alcotest.failf "write: %s" (Vfs.error_to_string e));
    let obs = Obs.create () in
    let c = Ccache.load ~obs ~fingerprint fs ~path in
    (Ccache.length c, Obs.counter obs "ccache.invalidations")
  in
  Alcotest.(check (pair int int)) "unparsable JSON" (0, 1)
    (load_counting "{ not json");
  Alcotest.(check (pair int int)) "wrong shape" (0, 1)
    (load_counting "[1, 2, 3]");
  Alcotest.(check (pair int int)) "future format version" (0, 1)
    (load_counting
       (Printf.sprintf
          "{\"format\": 99, \"fingerprint\": %S, \"entries\": []}" fingerprint));
  Alcotest.(check (pair int int)) "entry that is not a concrete spec" (0, 1)
    (load_counting
       (Printf.sprintf
          "{\"format\": 1, \"fingerprint\": %S, \"entries\": [{\"key\": \
           \"app\", \"value\": 42}]}"
          fingerprint));
  (* a missing file is an empty cache, not corruption *)
  let obs = Obs.create () in
  let c = Ccache.load ~obs ~fingerprint fs ~path:"/store/absent.json" in
  Alcotest.(check int) "missing file is empty" 0 (Ccache.length c);
  Alcotest.(check int) "missing file is not an invalidation" 0
    (Obs.counter obs "ccache.invalidations")

let mutation_forces_miss_end_to_end () =
  (* the full cycle a user sees: concretize, persist, edit a recipe,
     concretize again — the second run must re-solve, not replay *)
  let packages = base_packages () in
  let fs = Vfs.create () in
  let path = "/store/.spack-db/ccache.json" in
  let cache = Ccache.create ~fingerprint:(fp packages) () in
  let c1 = concretize_ok ~cache (ctx_of packages) "libx" in
  (match Ccache.save cache fs ~path with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save failed: %s" e);
  Alcotest.(check string) "cold pick is newest" "0.6"
    (Ospack_version.Version.to_string (Concrete.root_node c1).Concrete.version);
  let bumped =
    make_pkg "libx" [ version "0.5"; version "0.6"; version "0.7" ]
    :: List.filter (fun p -> p.p_name <> "libx") packages
  in
  let obs = Obs.create () in
  let cache2 = Ccache.load ~obs ~fingerprint:(fp bumped) fs ~path in
  let c2 = concretize_ok ~cache:cache2 (ctx_of bumped) "libx" in
  Alcotest.(check int) "stale entries invalidated" 1
    (Obs.counter obs "ccache.invalidations");
  Alcotest.(check int) "second run is a miss" 1
    (Obs.counter obs "ccache.misses");
  Alcotest.(check string) "re-solve sees the new version" "0.7"
    (Ospack_version.Version.to_string (Concrete.root_node c2).Concrete.version)

let () =
  Alcotest.run "ccache"
    [
      ( "fingerprint",
        [
          Alcotest.test_case "deterministic" `Quick fingerprint_deterministic;
          Alcotest.test_case "recipe mutation" `Quick
            fingerprint_recipe_mutation;
          Alcotest.test_case "compiler mutation" `Quick
            fingerprint_compiler_mutation;
          Alcotest.test_case "config mutation" `Quick
            fingerprint_config_mutation;
          Alcotest.test_case "backend tag" `Quick fingerprint_backend_tag;
        ] );
      ( "memo",
        [
          Alcotest.test_case "lookup/store/seeds" `Quick lookup_store_semantics;
          Alcotest.test_case "cached = cold" `Quick cached_equals_cold;
          Alcotest.test_case "store-aware reuse" `Quick reuse_layer;
        ] );
      ( "persistence",
        [
          Alcotest.test_case "save/load round-trip" `Quick save_load_roundtrip;
          Alcotest.test_case "stale fingerprint discarded" `Quick
            stale_fingerprint_discarded;
          Alcotest.test_case "corrupt cache ignored" `Quick
            corrupt_cache_ignored;
          Alcotest.test_case "recipe edit forces re-solve" `Quick
            mutation_forces_miss_end_to_end;
        ] );
    ]
