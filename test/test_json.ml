(* The JSON substrate and the structured concrete-spec serialization
   behind spec.json (paper §3.4.3). *)

module Json = Ospack_json.Json
module Concrete = Ospack_spec.Concrete
module Concretizer = Ospack_concretize.Concretizer
module Universe = Ospack_repo.Universe
module Repository = Ospack_package.Repository

let parse_cases () =
  let ok src expected =
    match Json.of_string src with
    | Ok v -> Alcotest.(check bool) src true (v = expected)
    | Error e -> Alcotest.failf "%s: %s" src e
  in
  ok "null" Json.Null;
  ok "true" (Json.Bool true);
  ok "42" (Json.Int 42);
  ok "-7" (Json.Int (-7));
  ok "2.5" (Json.Float 2.5);
  ok "1e3" (Json.Float 1000.0);
  ok {|"hi"|} (Json.String "hi");
  ok {|"a\nb\t\"c\\"|} (Json.String "a\nb\t\"c\\");
  ok {|"Aé"|} (Json.String "A\xc3\xa9");
  ok "[]" (Json.List []);
  ok "[1, 2, 3]" (Json.List [ Json.Int 1; Json.Int 2; Json.Int 3 ]);
  ok "{}" (Json.Obj []);
  ok {| { "a" : 1, "b": [true, null] } |}
    (Json.Obj
       [ ("a", Json.Int 1); ("b", Json.List [ Json.Bool true; Json.Null ]) ])

let parse_errors () =
  let bad src =
    Alcotest.(check bool) src true (Result.is_error (Json.of_string src))
  in
  bad "";
  bad "{";
  bad "[1,]";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad "tru";
  bad "1 2" (* trailing input *);
  bad "{'a': 1}" (* single quotes *)

let accessors () =
  let v =
    Json.Obj [ ("s", Json.String "x"); ("n", Json.Int 3); ("b", Json.Bool true) ]
  in
  Alcotest.(check (option string)) "member string" (Some "x")
    (Option.bind (Json.member "s" v) Json.get_string);
  Alcotest.(check (option int)) "member int" (Some 3)
    (Option.bind (Json.member "n" v) Json.get_int);
  Alcotest.(check (option bool)) "member bool" (Some true)
    (Option.bind (Json.member "b" v) Json.get_bool);
  Alcotest.(check bool) "missing member" true (Json.member "zz" v = None);
  Alcotest.(check bool) "type mismatch" true
    (Option.bind (Json.member "s" v) Json.get_int = None)

(* trace output must round-trip and golden-diff cleanly: fixed-point
   decimals, never exponent notation, shortest round-tripping mantissa *)
let float_formatting () =
  let shows f expected =
    Alcotest.(check string)
      (Printf.sprintf "render %h" f)
      expected
      (Json.to_string (Json.Float f))
  in
  shows 0.0002 "0.0002";
  shows 2.5 "2.5";
  shows 2.0 "2.0";
  shows (-0.5) "-0.5";
  shows 0.0 "0.0";
  shows 1e20 "100000000000000000000.0";
  shows 1.5e-7 "0.00000015";
  shows (-1.5e-7) "-0.00000015";
  shows 1e15 "1000000000000000.0";
  (* virtual-clock microsecond values, the trace hot case *)
  shows 200.0 "200.0";
  shows 1200.4 "1200.4";
  (* JSON cannot represent non-finite floats *)
  Alcotest.(check string) "nan" "null" (Json.to_string (Json.Float nan));
  Alcotest.(check string) "inf" "null" (Json.to_string (Json.Float infinity));
  (* no exponent notation, no locale separators, and exact round-trip for
     a spread of magnitudes *)
  List.iter
    (fun f ->
      let s = Json.to_string (Json.Float f) in
      Alcotest.(check bool)
        (s ^ " has no exponent") false
        (String.contains s 'e' || String.contains s 'E');
      Alcotest.(check bool)
        (s ^ " has no comma") false (String.contains s ',');
      match Json.of_string s with
      | Ok (Json.Float f') ->
          Alcotest.(check bool) (s ^ " round-trips") true (f = f')
      | Ok _ -> Alcotest.failf "%s reparsed as non-float" s
      | Error e -> Alcotest.failf "%s: %s" s e)
    [
      0.0002; 33.7; 1e-12; 6.02214076e23; 4.9e-324; 1.7976931348623157e308;
      0.1; (1.0 /. 3.0); -12345.678901234567;
    ]

let float_roundtrip =
  QCheck.Test.make ~name:"float rendering round-trips bit-exactly" ~count:500
    (QCheck.make
       ~print:(fun f -> Printf.sprintf "%h" f)
       QCheck.Gen.(
         map
           (fun (m, e) -> ldexp m e)
           (pair (float_bound_inclusive 1.0) (int_range (-60) 60))))
    (fun f ->
      match Json.of_string (Json.to_string (Json.Float f)) with
      | Ok (Json.Float f') -> f = f'
      | Ok (Json.Int i) -> float_of_int i = f
      | _ -> false)

(* random JSON values; strings restricted to printable to keep the
   generator simple *)
let arb_json =
  let open QCheck.Gen in
  let leaf =
    oneof
      [
        return Json.Null;
        map (fun b -> Json.Bool b) bool;
        map (fun i -> Json.Int i) (int_range (-1000000) 1000000);
        map
          (fun (m, e) -> Json.Float (ldexp m e))
          (pair (float_bound_inclusive 1.0) (int_range (-40) 40));
        map (fun s -> Json.String s) (string_size ~gen:printable (int_bound 12));
      ]
  in
  let value =
    sized (fun n ->
        fix
          (fun self n ->
            if n <= 0 then leaf
            else
              frequency
                [
                  (2, leaf);
                  ( 1,
                    map (fun l -> Json.List l)
                      (list_size (int_bound 4) (self (n / 2))) );
                  ( 1,
                    map
                      (fun kvs ->
                        (* object keys must be unique for roundtrip equality *)
                        let seen = Hashtbl.create 4 in
                        Json.Obj
                          (List.filter
                             (fun (k, _) ->
                               if Hashtbl.mem seen k then false
                               else begin
                                 Hashtbl.add seen k ();
                                 true
                               end)
                             kvs))
                      (list_size (int_bound 4)
                         (pair
                            (string_size ~gen:printable (int_bound 8))
                            (self (n / 2)))) );
                ])
          (min n 12))
  in
  QCheck.make ~print:(fun v -> Json.to_string v) value

let roundtrip_compact =
  QCheck.Test.make ~name:"of_string inverts to_string (compact)" ~count:300
    arb_json
    (fun v -> Json.of_string (Json.to_string v) = Ok v)

let roundtrip_pretty =
  QCheck.Test.make ~name:"of_string inverts to_string (pretty)" ~count:300
    arb_json
    (fun v -> Json.of_string (Json.to_string ~indent:2 v) = Ok v)

(* --- concrete specs --- *)

let universe_ctx =
  lazy
    (Concretizer.make_ctx ~config:Universe.default_config
       ~compilers:Universe.compilers (Universe.repository ()))

let spec_roundtrip () =
  List.iter
    (fun spec ->
      match Concretizer.concretize_string (Lazy.force universe_ctx) spec with
      | Error e -> Alcotest.failf "%s: %s" spec e
      | Ok c -> (
          let j = Concrete.to_json c in
          (* through the text form too *)
          match Json.of_string (Json.to_string ~indent:2 j) with
          | Error e -> Alcotest.failf "%s: reparse: %s" spec e
          | Ok j2 -> (
              match Concrete.of_json j2 with
              | Error e -> Alcotest.failf "%s: of_json: %s" spec e
              | Ok c2 ->
                  Alcotest.(check bool) (spec ^ " round-trips") true
                    (Concrete.equal c c2);
                  Alcotest.(check string) (spec ^ " same hash")
                    (Concrete.root_hash c) (Concrete.root_hash c2))))
    [ "mpileaks"; "ares"; "python"; "trilinos"; "stat +gui" ]

let spec_roundtrip_universe =
  QCheck.Test.make ~name:"spec.json round-trips across the universe" ~count:60
    (QCheck.make
       ~print:(fun s -> s)
       (QCheck.Gen.oneofl
          (Repository.package_names (Universe.repository ())
          |> List.filter (fun n -> n <> "bgq-mpi" && n <> "cray-mpi"))))
    (fun name ->
      match
        Concretizer.concretize_string (Lazy.force universe_ctx) name
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok c -> (
          match
            Json.of_string (Json.to_string (Concrete.to_json c))
          with
          | Error _ -> false
          | Ok j -> (
              match Concrete.of_json j with
              | Ok c2 -> Concrete.equal c c2
              | Error _ -> false)))

(* the one-line provenance spec (§3.4.3 fallback path): rendering a
   concrete spec and re-parsing it yields constraints the original
   satisfies, so re-concretization can reproduce the build *)
let oneline_provenance_roundtrip =
  QCheck.Test.make ~name:"one-line spec reparse is satisfied by the original"
    ~count:60
    (QCheck.make
       ~print:(fun s -> s)
       (QCheck.Gen.oneofl
          (Repository.package_names (Universe.repository ())
          |> List.filter (fun n -> n <> "bgq-mpi" && n <> "cray-mpi"))))
    (fun name ->
      match Concretizer.concretize_string (Lazy.force universe_ctx) name with
      | Error _ -> QCheck.assume_fail ()
      | Ok c -> (
          match Ospack_spec.Parser.parse (Concrete.to_string c) with
          | Error _ -> false
          | Ok ast -> Concrete.satisfies c ast))

let spec_json_rejects () =
  let bad j =
    Alcotest.(check bool) (Json.to_string j) true
      (Result.is_error (Concrete.of_json j))
  in
  bad (Json.Obj []);
  bad (Json.Obj [ ("root", Json.String "x") ]) (* no nodes *);
  bad
    (Json.Obj
       [ ("root", Json.String "x"); ("nodes", Json.List [ Json.Obj [] ]) ]);
  (* root not among nodes *)
  bad
    (Json.Obj
       [
         ("root", Json.String "ghost");
         ( "nodes",
           Json.List
             [
               Json.Obj
                 [
                   ("name", Json.String "x");
                   ("version", Json.String "1.0");
                   ( "compiler",
                     Json.Obj
                       [
                         ("name", Json.String "gcc");
                         ("version", Json.String "4.9.2");
                       ] );
                   ("variants", Json.Obj []);
                   ("arch", Json.String "linux");
                   ("deps", Json.List []);
                   ("provided", Json.List []);
                 ];
             ] );
       ])

let () =
  Alcotest.run "json"
    [
      ( "json",
        [
          Alcotest.test_case "parse cases" `Quick parse_cases;
          Alcotest.test_case "parse errors" `Quick parse_errors;
          Alcotest.test_case "accessors" `Quick accessors;
          Alcotest.test_case "float formatting (fixed-point)" `Quick
            float_formatting;
          QCheck_alcotest.to_alcotest float_roundtrip;
          QCheck_alcotest.to_alcotest roundtrip_compact;
          QCheck_alcotest.to_alcotest roundtrip_pretty;
        ] );
      ( "spec-json",
        [
          Alcotest.test_case "round-trip with hashes" `Quick spec_roundtrip;
          QCheck_alcotest.to_alcotest spec_roundtrip_universe;
          QCheck_alcotest.to_alcotest oneline_provenance_roundtrip;
          Alcotest.test_case "malformed inputs rejected" `Quick
            spec_json_rejects;
        ] );
    ]
