(* The install store: database queries, bottom-up installation with
   sub-DAG reuse (paper Fig. 9), uninstall safety, and provenance
   (§3.4.3). *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Concretizer = Ospack_concretize.Concretizer
module Concrete = Ospack_spec.Concrete
module Parser = Ospack_spec.Parser
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Provenance = Ospack_store.Provenance
module Vfs = Ospack_vfs.Vfs

let repo =
  Repository.create
    [
      make_pkg "mpileaks"
        [ version "1.0"; depends_on "mpi"; depends_on "callpath" ];
      make_pkg "callpath" [ version "1.0"; depends_on "dyninst" ];
      make_pkg "dyninst" [ version "8.2"; depends_on "libelf" ];
      make_pkg "libelf" [ version "0.8.13" ];
      make_pkg "mpich" [ version "3.0.4"; provides "mpi@:3" ];
      make_pkg "openmpi" [ version "1.8.2"; provides "mpi@:2.2" ];
    ]

let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ]
let cctx = Concretizer.make_ctx ~compilers repo

let concretize spec =
  match Concretizer.concretize_string cctx spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "concretize %s: %s" spec e

let fresh () =
  let vfs = Vfs.create () in
  (vfs, Installer.create ~vfs ~repo ~compilers ())

let install inst spec =
  match Installer.install inst (concretize spec) with
  | Ok outcomes -> outcomes
  | Error e -> Alcotest.failf "install %s: %s" spec e

(* --- database --- *)

let database_queries () =
  let _, inst = fresh () in
  ignore (install inst "mpileaks ^mpich");
  let db = Installer.database inst in
  Alcotest.(check int) "five records" 5 (Database.count db);
  Alcotest.(check int) "one mpileaks" 1
    (List.length (Database.find_by_name db "mpileaks"));
  (* find_satisfying with abstract queries *)
  let q s = Database.find_satisfying db (Parser.parse_exn s) in
  Alcotest.(check int) "query by name" 1 (List.length (q "mpileaks"));
  Alcotest.(check int) "query by dep" 1 (List.length (q "mpileaks ^libelf@0.8.13"));
  Alcotest.(check int) "query by virtual" 1 (List.length (q "mpileaks ^mpi"));
  Alcotest.(check int) "provider satisfies virtual query" 1
    (List.length (q "mpi"));
  Alcotest.(check int) "mismatched version" 0 (List.length (q "mpileaks@2:"));
  (* explicit flag: only the root is explicit *)
  let explicit = List.filter (fun r -> r.Database.r_explicit) (Database.all db) in
  Alcotest.(check (list string)) "explicit root only" [ "mpileaks" ]
    (List.map (fun r -> Concrete.root r.Database.r_spec) explicit)

let dependents_tracking () =
  let _, inst = fresh () in
  ignore (install inst "mpileaks ^mpich");
  let db = Installer.database inst in
  let hash_of name =
    match Database.find_by_name db name with
    | [ r ] -> r.Database.r_hash
    | _ -> Alcotest.failf "expected one %s" name
  in
  let deps_of_libelf = Database.dependents_of db (hash_of "libelf") in
  Alcotest.(check (slist string compare)) "libelf dependents"
    [ "callpath"; "dyninst"; "mpileaks" ]
    (List.map (fun r -> Concrete.root r.Database.r_spec) deps_of_libelf);
  Alcotest.(check (list string)) "root has no dependents" []
    (List.map
       (fun r -> Concrete.root r.Database.r_spec)
       (Database.dependents_of db (hash_of "mpileaks")));
  (* removal refuses while dependents exist *)
  Alcotest.(check bool) "remove libelf refused" true
    (Result.is_error (Database.remove db (hash_of "libelf")));
  Alcotest.(check bool) "remove root ok" true
    (Result.is_ok (Database.remove db (hash_of "mpileaks")))

(* --- installer --- *)

let bottom_up_install () =
  let vfs, inst = fresh () in
  let outcomes = install inst "mpileaks ^mpich" in
  Alcotest.(check int) "five builds" 5 (List.length outcomes);
  Alcotest.(check bool) "nothing reused on first install" true
    (List.for_all (fun o -> not o.Installer.o_reused) outcomes);
  (* dependencies install before dependents *)
  let order =
    List.map
      (fun o -> Concrete.root o.Installer.o_record.Database.r_spec)
      outcomes
  in
  let pos x =
    let rec go i = function
      | [] -> -1
      | y :: r -> if x = y then i else go (i + 1) r
    in
    go 0 order
  in
  Alcotest.(check bool) "libelf before dyninst" true (pos "libelf" < pos "dyninst");
  Alcotest.(check bool) "root last" true (pos "mpileaks" = 4);
  (* prefixes exist with provenance and artifacts *)
  List.iter
    (fun o ->
      let prefix = o.Installer.o_record.Database.r_prefix in
      Alcotest.(check bool) (prefix ^ " exists") true (Vfs.is_dir vfs prefix);
      Alcotest.(check bool) (prefix ^ " has spec file") true
        (Provenance.read_spec vfs ~prefix <> None))
    outcomes

(* Fig. 9: installing with a second MPI reuses the dyninst sub-DAG *)
let subdag_reuse () =
  let _, inst = fresh () in
  ignore (install inst "mpileaks ^mpich");
  let second = install inst "mpileaks ^openmpi" in
  let reused, built =
    List.partition (fun o -> o.Installer.o_reused) second
  in
  let names l =
    List.map (fun o -> Concrete.root o.Installer.o_record.Database.r_spec) l
    |> List.sort compare
  in
  Alcotest.(check (list string)) "dyninst chain reused"
    [ "callpath"; "dyninst"; "libelf" ]
    (names reused);
  Alcotest.(check (list string)) "only MPI-dependent parts rebuilt"
    [ "mpileaks"; "openmpi" ]
    (names built);
  Alcotest.(check int) "7 records total, not 10" 7
    (Database.count (Installer.database inst));
  (* third install of the same thing: everything reused *)
  let third = install inst "mpileaks ^openmpi" in
  Alcotest.(check bool) "idempotent" true
    (List.for_all (fun o -> o.Installer.o_reused) third)

let uninstall_safety () =
  let vfs, inst = fresh () in
  ignore (install inst "mpileaks ^mpich");
  let db = Installer.database inst in
  let hash_of name =
    match Database.find_by_name db name with
    | [ r ] -> r.Database.r_hash
    | _ -> Alcotest.failf "expected one %s" name
  in
  (match Installer.uninstall inst ~hash:(hash_of "libelf") with
  | Ok _ -> Alcotest.fail "uninstalling a dependency must fail"
  | Error msg ->
      Alcotest.(check bool) "error names a dependent" true
        (Astring.String.is_infix ~affix:"dyninst" msg));
  let root_hash = hash_of "mpileaks" in
  let root_prefix =
    (Option.get (Database.find_by_hash db root_hash)).Database.r_prefix
  in
  (match Installer.uninstall inst ~hash:root_hash with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "root uninstall failed: %s" e);
  Alcotest.(check bool) "prefix removed" false (Vfs.exists vfs root_prefix);
  Alcotest.(check int) "record gone" 4 (Database.count db)

let provenance_content () =
  let vfs, inst = fresh () in
  ignore (install inst "mpileaks ^mpich");
  let db = Installer.database inst in
  let r = List.hd (Database.find_by_name db "mpileaks") in
  let prefix = r.Database.r_prefix in
  (match Provenance.read_spec vfs ~prefix with
  | Some line ->
      (* the stored spec re-parses and pins the same configuration *)
      let ast = Parser.parse_exn line in
      Alcotest.(check bool) "stored spec satisfied by the install" true
        (Concrete.satisfies r.Database.r_spec ast)
  | None -> Alcotest.fail "spec file missing");
  (match Provenance.read_log vfs ~prefix with
  | Some lines -> Alcotest.(check bool) "log nonempty" true (lines <> [])
  | None -> Alcotest.fail "build log missing");
  match Provenance.read_package_source vfs ~prefix with
  | Some src -> Alcotest.(check string) "package source" "builtin:mpileaks" src
  | None -> Alcotest.fail "package source missing"

let spec_json_survives_drift () =
  (* §3.4.3: the structured provenance restores the exact DAG even if
     concretization preferences have changed since the install *)
  let vfs, inst = fresh () in
  ignore (install inst "mpileaks ^mpich");
  let db = Installer.database inst in
  let r = List.hd (Database.find_by_name db "mpileaks") in
  let stored =
    match Provenance.read_spec_json vfs ~prefix:r.Database.r_prefix with
    | Ok c -> c
    | Error e -> Alcotest.failf "spec.json: %s" e
  in
  Alcotest.(check bool) "exact DAG restored" true
    (Concrete.equal stored r.Database.r_spec);
  Alcotest.(check string) "same hash" r.Database.r_hash
    (Concrete.root_hash stored);
  (* a second installer with drifted preferences installs the stored spec
     to the very same configuration, bypassing its own concretizer *)
  let drifted =
    Installer.create
      ~config:
        (Ospack_config.Config.of_assoc
           [ ("packages.libelf.version", "0.8.13") ])
      ~vfs:(Vfs.create ()) ~repo ~compilers ()
  in
  match Installer.install drifted stored with
  | Ok outcomes ->
      let root = List.nth outcomes (List.length outcomes - 1) in
      Alcotest.(check string) "identical hash under drifted config"
        r.Database.r_hash root.Installer.o_record.Database.r_hash
  | Error e -> Alcotest.failf "drifted install: %s" e

(* §4.4: external (vendor/site) packages are used instead of building *)
let external_packages () =
  let vfs = Vfs.create () in
  let config =
    Ospack_config.Config.of_assoc
      [
        ( "externals.mpich",
          "mpich@3.0.4 | /opt/vendor/mpich-3.0.4" );
      ]
  in
  let inst = Installer.create ~config ~vfs ~repo ~compilers () in
  let outcomes =
    match Installer.install inst (concretize "mpileaks ^mpich") with
    | Ok o -> o
    | Error e -> Alcotest.failf "install: %s" e
  in
  let mpich_outcome =
    List.find
      (fun o -> Concrete.root o.Installer.o_record.Database.r_spec = "mpich")
      outcomes
  in
  let r = mpich_outcome.Installer.o_record in
  Alcotest.(check bool) "marked external" true r.Database.r_external;
  Alcotest.(check string) "vendor prefix used" "/opt/vendor/mpich-3.0.4"
    r.Database.r_prefix;
  Alcotest.(check bool) "no simulated build time" true
    (r.Database.r_build_seconds = 0.0);
  (* vendor artifacts materialized so dependents resolve *)
  Alcotest.(check bool) "vendor library present" true
    (Vfs.is_file vfs "/opt/vendor/mpich-3.0.4/lib/libmpich.so");
  (* the dependent was built against the vendor prefix: its RPATH points
     there and it runs with an empty environment *)
  let root =
    List.find
      (fun o -> Concrete.root o.Installer.o_record.Database.r_spec = "mpileaks")
      outcomes
  in
  let exe = root.Installer.o_record.Database.r_prefix ^ "/bin/mpileaks" in
  Alcotest.(check bool) "dependent resolves vendor lib" true
    (Ospack_buildsim.Loader.can_run vfs ~path:exe
       ~env:Ospack_buildsim.Env.empty);
  (* uninstalling the external removes the record but not the vendor tree *)
  (match Installer.uninstall inst ~hash:root.Installer.o_record.Database.r_hash with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "uninstall root: %s" e);
  (match Installer.uninstall inst ~hash:r.Database.r_hash with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "uninstall external: %s" e);
  Alcotest.(check bool) "vendor prefix untouched" true
    (Vfs.is_dir vfs "/opt/vendor/mpich-3.0.4")

let external_spec_mismatch () =
  (* the declared external must actually satisfy the concretized node *)
  let vfs = Vfs.create () in
  let config =
    Ospack_config.Config.of_assoc
      [ ("externals.mpich", "mpich@1.4 | /opt/vendor/old-mpich") ]
  in
  let inst = Installer.create ~config ~vfs ~repo ~compilers () in
  match Installer.install inst (concretize "mpileaks ^mpich") with
  | Ok outcomes ->
      let mpich =
        List.find
          (fun o ->
            Concrete.root o.Installer.o_record.Database.r_spec = "mpich")
          outcomes
      in
      Alcotest.(check bool) "built normally (3.0.4 does not match @1.4)" false
        mpich.Installer.o_record.Database.r_external
  | Error e -> Alcotest.failf "install: %s" e

let buildcache_roundtrip () =
  let vfs = Vfs.create () in
  let cache = Ospack_store.Buildcache.create vfs ~root:"/ospack/buildcache" in
  (* build once, push everything to the cache *)
  let builder = Installer.create ~vfs ~repo ~compilers () in
  (match Installer.install builder (concretize "mpileaks ^mpich") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "build: %s" e);
  (match Installer.push_to_cache builder cache with
  | Ok n -> Alcotest.(check int) "five entries pushed" 5 n
  | Error e -> Alcotest.failf "push: %s" e);
  Alcotest.(check int) "cache lists them" 5
    (List.length (Ospack_store.Buildcache.cached_hashes cache));
  (* a second store on the same filesystem, DIFFERENT install root,
     pulls from the cache instead of building *)
  let puller =
    Installer.create ~install_root:"/elsewhere/opt" ~cache ~vfs ~repo
      ~compilers ()
  in
  (match Installer.install puller (concretize "mpileaks ^mpich") with
  | Ok outcomes ->
      Alcotest.(check bool) "all from cache" true
        (List.for_all (fun o -> o.Installer.o_cached) outcomes);
      Alcotest.(check bool) "no simulated build time" true
        (Installer.total_build_seconds puller = 0.0);
      (* relocation: the pulled binary's RPATHs point into the NEW root
         and the binary runs bare *)
      let root = List.nth outcomes (List.length outcomes - 1) in
      let prefix = root.Installer.o_record.Database.r_prefix in
      Alcotest.(check bool) "prefix under the new root" true
        (Astring.String.is_prefix ~affix:"/elsewhere/opt" prefix);
      (match Vfs.read_file vfs (prefix ^ "/bin/mpileaks") with
      | Ok content ->
          Alcotest.(check bool) "old root scrubbed" false
            (Astring.String.is_infix ~affix:"/ospack/opt" content);
          Alcotest.(check bool) "new root embedded" true
            (Astring.String.is_infix ~affix:"/elsewhere/opt" content)
      | Error _ -> Alcotest.fail "pulled binary missing");
      Alcotest.(check bool) "pulled binary runs with empty env" true
        (Ospack_buildsim.Loader.can_run vfs ~path:(prefix ^ "/bin/mpileaks")
           ~env:Ospack_buildsim.Env.empty)
  | Error e -> Alcotest.failf "pull: %s" e);
  (* relocated pulls still verify clean against their manifests *)
  (let pulled =
     List.hd (Database.find_by_name (Installer.database puller) "mpileaks")
   in
   match
     Provenance.verify_manifest vfs ~prefix:pulled.Database.r_prefix
   with
   | Ok report ->
       Alcotest.(check bool) "relocated prefix verifies clean" true
         (Provenance.report_clean report)
   | Error e -> Alcotest.failf "verify after pull: %s" e);
  (* provenance travels with the archive *)
  let pulled_root =
    List.hd (Database.find_by_name (Installer.database puller) "mpileaks")
  in
  match
    Provenance.read_spec_json vfs ~prefix:pulled_root.Database.r_prefix
  with
  | Ok stored ->
      Alcotest.(check string) "provenance hash matches"
        pulled_root.Database.r_hash (Concrete.root_hash stored)
  | Error e -> Alcotest.failf "provenance after pull: %s" e

(* save must propagate problems instead of silently skipping entries:
   a record pointing at nothing, or at an empty tree, is an error *)
let buildcache_save_errors () =
  let vfs = Vfs.create () in
  let cache = Ospack_store.Buildcache.create vfs ~root:"/cache" in
  let spec = concretize "libelf" in
  let record prefix =
    {
      Database.r_spec = spec;
      r_hash = Concrete.root_hash spec;
      r_prefix = prefix;
      r_explicit = true;
      r_external = false;
      r_build_seconds = 0.0;
    }
  in
  (match
     Ospack_store.Buildcache.save cache ~install_root:"/r1"
       (record "/r1/missing")
   with
  | Ok () -> Alcotest.fail "missing prefix must not archive"
  | Error e ->
      Alcotest.(check bool) "missing prefix named" true
        (Astring.String.is_infix ~affix:"is not a directory"
           (Ospack_store.Buildcache.error_to_string e)));
  (match Vfs.mkdir_p vfs "/r1/empty" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "mkdir: %s" (Vfs.error_to_string e));
  match
    Ospack_store.Buildcache.save cache ~install_root:"/r1" (record "/r1/empty")
  with
  | Ok () -> Alcotest.fail "empty prefix must not archive"
  | Error e ->
      Alcotest.(check bool) "empty prefix refused" true
        (Astring.String.is_infix ~affix:"refusing to archive empty prefix"
           (Ospack_store.Buildcache.error_to_string e))

(* re-extraction must replace a symlink whose (relocated) target changed,
   and empty directories must survive the round trip *)
let buildcache_stale_links_and_dirs () =
  let vfs = Vfs.create () in
  let cache = Ospack_store.Buildcache.create vfs ~root:"/cache" in
  let ok name = function
    | Ok _ -> ()
    | Error e -> Alcotest.failf "%s: %s" name (Vfs.error_to_string e)
  in
  ok "mkdir" (Vfs.mkdir_p vfs "/r1/pkg/bin");
  ok "write" (Vfs.write_file vfs "/r1/pkg/bin/tool" "prefix=/r1/pkg\n");
  ok "link"
    (Vfs.symlink vfs ~target:"/r1/pkg/bin/tool" ~link:"/r1/pkg/current");
  ok "mkdir" (Vfs.mkdir_p vfs "/r1/pkg/share/doc");
  let spec = concretize "libelf" in
  let record =
    {
      Database.r_spec = spec;
      r_hash = Concrete.root_hash spec;
      r_prefix = "/r1/pkg";
      r_explicit = true;
      r_external = false;
      r_build_seconds = 0.0;
    }
  in
  (match Ospack_store.Buildcache.save cache ~install_root:"/r1" record with
  | Ok () -> ()
  | Error e ->
      Alcotest.failf "save: %s" (Ospack_store.Buildcache.error_to_string e));
  let extract root =
    match
      Ospack_store.Buildcache.extract cache ~hash:record.Database.r_hash
        ~install_root:root ~prefix:"/dest/pkg"
    with
    | Ok _ -> ()
    | Error e ->
        Alcotest.failf "extract under %s: %s" root
          (Ospack_store.Buildcache.error_to_string e)
  in
  let link_target () =
    match Vfs.readlink vfs "/dest/pkg/current" with
    | Ok t -> t
    | Error e -> Alcotest.failf "readlink: %s" (Vfs.error_to_string e)
  in
  extract "/r1";
  Alcotest.(check string) "first extract keeps the cached target"
    "/r1/pkg/bin/tool" (link_target ());
  Alcotest.(check bool) "empty directory extracted" true
    (Vfs.is_dir vfs "/dest/pkg/share/doc");
  (* same destination, new install root: the old link is stale now *)
  extract "/r2";
  Alcotest.(check string) "stale link re-created with relocated target"
    "/r2/pkg/bin/tool" (link_target ());
  (match Vfs.read_file vfs "/dest/pkg/bin/tool" with
  | Ok c ->
      Alcotest.(check string) "file contents relocated too" "prefix=/r2/pkg\n" c
  | Error e -> Alcotest.failf "read: %s" (Vfs.error_to_string e));
  (* a non-link squatting on the path is replaced as well *)
  ok "remove" (Vfs.remove vfs ~recursive:true "/dest/pkg/current");
  ok "write" (Vfs.write_file vfs "/dest/pkg/current" "not a link");
  extract "/r2";
  Alcotest.(check string) "squatting file replaced by the link"
    "/r2/pkg/bin/tool" (link_target ())

(* an entry whose file list disagrees with its recorded count is
   truncated and must not extract *)
let buildcache_truncated_rejected () =
  let vfs = Vfs.create () in
  let cache = Ospack_store.Buildcache.create vfs ~root:"/cache" in
  let spec = concretize "libelf" in
  let hash = Concrete.root_hash spec in
  let module Json = Ospack_json.Json in
  let entry =
    Json.Obj
      [
        ("format", Json.Int 1);
        ("install_root", Json.String "/r1");
        ("prefix", Json.String "/r1/pkg");
        ("spec", Concrete.to_json spec);
        ("file_count", Json.Int 3);
        ( "files",
          Json.List
            [
              Json.Obj
                [
                  ("rel", Json.String "bin/tool");
                  ("kind", Json.String "file");
                  ("content", Json.String "x");
                ];
            ] );
      ]
  in
  (match
     Vfs.write_file vfs
       ("/cache/" ^ hash ^ ".json")
       (Json.to_string entry)
   with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write entry: %s" (Vfs.error_to_string e));
  match
    Ospack_store.Buildcache.extract cache ~hash ~install_root:"/r2"
      ~prefix:"/dest/pkg"
  with
  | Ok _ -> Alcotest.fail "truncated entry must not extract"
  | Error e ->
      Alcotest.(check bool) "truncation reported with counts" true
        (Astring.String.is_infix ~affix:"truncated entry"
           (Ospack_store.Buildcache.error_to_string e));
      Alcotest.(check bool) "nothing materialized" false
        (Vfs.is_file vfs "/dest/pkg/bin/tool")

let mirror_fetching () =
  let vfs = Vfs.create () in
  let mirror = Ospack_buildsim.Mirror.create vfs ~root:"/mirror" in
  let n = Ospack_buildsim.Mirror.populate mirror repo in
  Alcotest.(check int) "every declared version mirrored" 6 n;
  (* builds staged from the mirror verify checksums and log the fetch *)
  let inst = Installer.create ~mirror ~vfs ~repo ~compilers () in
  (match Installer.install inst (concretize "libelf") with
  | Ok outcomes ->
      let r = (List.hd outcomes).Installer.o_record in
      (match Provenance.read_log vfs ~prefix:r.Database.r_prefix with
      | Some log ->
          Alcotest.(check bool) "fetch logged with verification" true
            (List.exists
               (fun l -> Astring.String.is_infix ~affix:"md5 verified" l)
               log)
      | None -> Alcotest.fail "no build log")
  | Error e -> Alcotest.failf "mirrored install: %s" e);
  (* corrupt an archive: the build fails at staging with a checksum error *)
  let version = Ospack_version.Version.of_string "8.2" in
  let path =
    "/mirror/" ^ Ospack_buildsim.Mirror.archive_rel ~name:"dyninst" ~version
  in
  ignore (Vfs.write_file vfs path "TAMPERED");
  (match Installer.install inst (concretize "dyninst") with
  | Ok _ -> Alcotest.fail "corrupted archive must fail"
  | Error e ->
      Alcotest.(check bool) "checksum mismatch reported" true
        (Astring.String.is_infix ~affix:"checksum mismatch" e));
  (* a package missing from the mirror fails too *)
  ignore (Vfs.remove vfs "/mirror/mpich-3.0.4.tar.gz");
  match Installer.install inst (concretize "mpich") with
  | Ok _ -> Alcotest.fail "missing archive must fail"
  | Error e ->
      Alcotest.(check bool) "missing archive reported" true
        (Astring.String.is_infix ~affix:"no archive" e)

(* --- typed accounting: summaries, stats, staging failures --- *)

let summary_classification () =
  let _, inst = fresh () in
  let first = Installer.summary_of_outcomes (install inst "mpileaks ^mpich") in
  Alcotest.(check int) "all built" 5 first.Installer.s_built;
  Alcotest.(check int) "none reused" 0 first.Installer.s_reused;
  Alcotest.(check string) "first summary" "5 built, 0 reused"
    (Installer.summary_to_string first);
  let again = Installer.summary_of_outcomes (install inst "mpileaks ^mpich") in
  Alcotest.(check int) "nothing rebuilt" 0 again.Installer.s_built;
  Alcotest.(check int) "all reused" 5 again.Installer.s_reused;
  Alcotest.(check string) "reuse summary" "0 built, 5 reused"
    (Installer.summary_to_string again);
  (* lifetime stats accumulate across both installs *)
  let st = Installer.stats inst in
  Alcotest.(check int) "stats built" 5 st.Installer.st_built;
  Alcotest.(check int) "stats reused" 5 st.Installer.st_reused;
  Alcotest.(check int) "no cache configured, no misses" 0
    st.Installer.st_cache_misses

let cache_accounting () =
  let vfs = Vfs.create () in
  let cache = Ospack_store.Buildcache.create vfs ~root:"/ospack/buildcache" in
  (* seed the cache with just the dyninst sub-DAG *)
  let seeder = Installer.create ~vfs ~repo ~compilers () in
  (match Installer.install seeder (concretize "dyninst") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "seed: %s" e);
  (match Installer.push_to_cache seeder cache with
  | Ok n -> Alcotest.(check int) "two entries pushed" 2 n
  | Error e -> Alcotest.failf "push: %s" e);
  let puller =
    Installer.create ~install_root:"/elsewhere/opt" ~cache ~vfs ~repo
      ~compilers ()
  in
  let outcomes =
    match Installer.install puller (concretize "mpileaks ^mpich") with
    | Ok o -> o
    | Error e -> Alcotest.failf "pull: %s" e
  in
  (* per-outcome flags: libelf+dyninst are hits, the rest are typed misses *)
  let name o = Concrete.root o.Installer.o_record.Database.r_spec in
  let hits = List.filter (fun o -> o.Installer.o_cached) outcomes in
  let misses = List.filter (fun o -> o.Installer.o_cache_miss) outcomes in
  Alcotest.(check (slist string compare))
    "cache hits" [ "dyninst"; "libelf" ] (List.map name hits);
  Alcotest.(check (slist string compare))
    "cache misses"
    [ "callpath"; "mpich"; "mpileaks" ]
    (List.map name misses);
  let s = Installer.summary_of_outcomes outcomes in
  Alcotest.(check string) "mixed summary"
    "3 built, 0 reused, 2 from cache, 3 cache misses"
    (Installer.summary_to_string s);
  let st = Installer.stats puller in
  Alcotest.(check int) "stats hits" 2 st.Installer.st_cache_hits;
  Alcotest.(check int) "stats misses" 3 st.Installer.st_cache_misses;
  Alcotest.(check int) "stats built" 3 st.Installer.st_built

let staging_failure_accounting () =
  let vfs = Vfs.create () in
  (* an empty mirror: every staging attempt fails before any build step *)
  let mirror = Ospack_buildsim.Mirror.create vfs ~root:"/mirror" in
  let obs = Ospack_obs.Obs.create () in
  let inst = Installer.create ~mirror ~obs ~vfs ~repo ~compilers () in
  (match Installer.install inst (concretize "libelf") with
  | Ok _ -> Alcotest.fail "empty mirror must fail staging"
  | Error e ->
      Alcotest.(check bool) "message still names the archive" true
        (Astring.String.is_infix ~affix:"no archive" e));
  (* the failure is classified from the typed Staging error, not the text *)
  let st = Installer.stats inst in
  Alcotest.(check int) "one staging failure" 1 st.Installer.st_staging_failures;
  Alcotest.(check int) "nothing built" 0 st.Installer.st_built;
  Alcotest.(check int) "obs counter agrees" 1
    (Ospack_obs.Obs.counter obs "install.staging_failures")

let index_persistence () =
  (* a second installer on the same filesystem picks up the store *)
  let vfs = Vfs.create () in
  let first = Installer.create ~vfs ~repo ~compilers () in
  (match Installer.install first (concretize "mpileaks ^mpich") with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install: %s" e);
  (* the index persists as hash-prefix shards + manifest, not the legacy
     single file *)
  Alcotest.(check bool) "manifest written" true
    (Vfs.is_file vfs (Installer.manifest_path first));
  Alcotest.(check bool) "no legacy index" false
    (Vfs.is_file vfs (Installer.index_path first));
  let records = Database.all (Installer.database first) in
  Alcotest.(check int) "five records" 5 (List.length records);
  List.iter
    (fun (r : Database.record) ->
      let shard =
        Installer.shard_path first (Installer.shard_of_hash r.Database.r_hash)
      in
      Alcotest.(check bool) (shard ^ " exists") true (Vfs.is_file vfs shard))
    records;
  Alcotest.(check bool) "index bytes accounted" true
    (Installer.index_bytes_written first > 0);
  let second = Installer.create ~vfs ~repo ~compilers () in
  Alcotest.(check int) "fresh db empty" 0
    (Database.count (Installer.database second));
  (match Installer.load_index second with
  | Ok n -> Alcotest.(check int) "records loaded" 5 n
  | Error e -> Alcotest.failf "load_index: %s" e);
  (* and installs through the second installer are pure reuse *)
  (match Installer.install second (concretize "mpileaks ^mpich") with
  | Ok outcomes ->
      Alcotest.(check bool) "everything reused" true
        (List.for_all (fun o -> o.Installer.o_reused) outcomes)
  | Error e -> Alcotest.failf "reinstall: %s" e);
  (* empty filesystem: loading is a clean no-op *)
  let empty = Installer.create ~vfs:(Vfs.create ()) ~repo ~compilers () in
  Alcotest.(check (result int string)) "no index yet" (Ok 0)
    (Installer.load_index empty)

let legacy_index_migration () =
  let module Json = Ospack_json.Json in
  (* build a store, rewrite its index in the legacy single-file layout,
     and let load_index migrate it back to shards transparently *)
  let vfs, first = fresh () in
  ignore (install first "mpileaks ^mpich");
  let legacy =
    Json.to_string ~indent:2 (Database.to_json (Installer.database first))
  in
  (match Vfs.remove vfs ~recursive:true (Installer.index_dir first) with
  | Ok () -> ()
  | Error e -> Alcotest.failf "reset shards: %s" (Vfs.error_to_string e));
  (match Vfs.write_file vfs (Installer.index_path first) legacy with
  | Ok () -> ()
  | Error e -> Alcotest.failf "write legacy: %s" (Vfs.error_to_string e));
  (* a fresh process opens the legacy store *)
  let second = Installer.create ~vfs ~repo ~compilers () in
  (match Installer.load_index second with
  | Ok n -> Alcotest.(check int) "all records migrated" 5 n
  | Error e -> Alcotest.failf "load_index: %s" e);
  Alcotest.(check bool) "legacy file retired" false
    (Vfs.is_file vfs (Installer.index_path second));
  Alcotest.(check bool) "manifest written" true
    (Vfs.is_file vfs (Installer.manifest_path second));
  List.iter
    (fun (r : Database.record) ->
      let shard =
        Installer.shard_path second (Installer.shard_of_hash r.Database.r_hash)
      in
      Alcotest.(check bool) (shard ^ " exists") true (Vfs.is_file vfs shard))
    (Database.all (Installer.database second));
  (* round-trip: the migrated shards reload identically, and installs
     through them are pure reuse *)
  let third = Installer.create ~vfs ~repo ~compilers () in
  (match Installer.load_index third with
  | Ok n -> Alcotest.(check int) "sharded reload" 5 n
  | Error e -> Alcotest.failf "reload: %s" e);
  Alcotest.(check bool) "migrated db identical" true
    (Json.to_string (Database.to_json (Installer.database third))
    = Json.to_string (Database.to_json (Installer.database first)));
  match Installer.install third (concretize "mpileaks ^mpich") with
  | Ok outcomes ->
      Alcotest.(check bool) "everything reused after migration" true
        (List.for_all (fun o -> o.Installer.o_reused) outcomes)
  | Error e -> Alcotest.failf "reinstall: %s" e

let () =
  Alcotest.run "store"
    [
      ( "database",
        [
          Alcotest.test_case "queries" `Quick database_queries;
          Alcotest.test_case "dependents" `Quick dependents_tracking;
        ] );
      ( "installer",
        [
          Alcotest.test_case "bottom-up install" `Quick bottom_up_install;
          Alcotest.test_case "sub-DAG reuse (Fig. 9)" `Quick subdag_reuse;
          Alcotest.test_case "uninstall safety" `Quick uninstall_safety;
          Alcotest.test_case "provenance (§3.4.3)" `Quick provenance_content;
          Alcotest.test_case "spec.json immune to preference drift" `Quick
            spec_json_survives_drift;
          Alcotest.test_case "external packages (§4.4)" `Quick
            external_packages;
          Alcotest.test_case "external spec mismatch" `Quick
            external_spec_mismatch;
          Alcotest.test_case "on-disk index persistence" `Quick
            index_persistence;
          Alcotest.test_case "legacy index migration" `Quick
            legacy_index_migration;
          Alcotest.test_case "binary cache with relocation" `Quick
            buildcache_roundtrip;
          Alcotest.test_case "buildcache save error propagation" `Quick
            buildcache_save_errors;
          Alcotest.test_case "stale symlinks + empty dirs on re-extract" `Quick
            buildcache_stale_links_and_dirs;
          Alcotest.test_case "truncated cache entry rejected" `Quick
            buildcache_truncated_rejected;
          Alcotest.test_case "mirror fetch + checksum verification" `Quick
            mirror_fetching;
          Alcotest.test_case "summary classification" `Quick
            summary_classification;
          Alcotest.test_case "buildcache hit/miss accounting" `Quick
            cache_accounting;
          Alcotest.test_case "staging failures counted typed" `Quick
            staging_failure_accounting;
        ] );
    ]
