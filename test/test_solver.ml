(* Differential testing of the concretizer backends (the backend-agnostic
   concretizer's cornerstone): the greedy fixed point vs the complete
   clause solver, over the 245-package universe and a constraint battery.
   The contract under test:
   - whenever greedy succeeds, both backends return byte-identical results
     (round 0 of the clause backend IS the greedy run);
   - when greedy fails but a solution exists (the paper's §4.5 hwloc
     pattern), the clause backend finds it without chronological
     backtracking, and the result satisfies the query;
   - when no solution exists, both fail with the same typed error and the
     clause backend renders a human-readable unsat core. *)

module Repository = Ospack_package.Repository
module Package = Ospack_package.Package
module Concretizer = Ospack_concretize.Concretizer
module Backends = Ospack_concretize.Backends
module Clauses = Ospack_concretize.Clauses
module Solver = Ospack_concretize.Solver
module I = Ospack_concretize.Concretizer_intf
module Cerror = Ospack_concretize.Cerror
module Concrete = Ospack_spec.Concrete
module Parser = Ospack_spec.Parser
module Json = Ospack_json.Json
module Version = Ospack_version.Version
module Config = Ospack_config.Config
module Universe = Ospack_repo.Universe

let universe_ctx () =
  Concretizer.make_ctx ~config:Universe.default_config
    ~compilers:Universe.compilers (Universe.repository ())

let parse s =
  match Parser.parse s with
  | Ok a -> a
  | Error e -> Alcotest.failf "%s: parse error: %s" s e

(* byte-identical: JSON serialization plus the rendered tree *)
let render c = Json.to_string (Concrete.to_json c) ^ "\n" ^ Concrete.tree_string c

(* ------------------------------------------------------------------ *)
(* the raw CDCL solver                                                 *)

let solver_sat () =
  (* (x1 | x2) & (-x1 | x2) -> x2 true in any model *)
  let outcome, _ =
    Solver.solve ~nvars:2
      ~clauses:[ ([ 1; 2 ], 0); ([ -1; 2 ], 1) ]
      ~order:[ 1; 2 ] ()
  in
  match outcome with
  | Solver.Sat model -> Alcotest.(check bool) "x2 assigned true" true model.(2)
  | Solver.Unsat _ -> Alcotest.fail "expected SAT"

let solver_unsat_core () =
  (* x1 & (x1 -> x2) & -x2: every clause participates in the conflict *)
  let outcome, _ =
    Solver.solve ~nvars:2
      ~clauses:[ ([ 1 ], 10); ([ -1; 2 ], 11); ([ -2 ], 12) ]
      ~order:[ 1; 2 ] ()
  in
  match outcome with
  | Solver.Sat _ -> Alcotest.fail "expected UNSAT"
  | Solver.Unsat core ->
      Alcotest.(check (list int)) "core names all three origins" [ 10; 11; 12 ]
        (List.sort_uniq compare core)

let solver_propagation_stats () =
  let _, stats =
    Solver.solve ~nvars:3
      ~clauses:[ ([ 1 ], 0); ([ -1; 2 ], 1); ([ -2; 3 ], 2) ]
      ~order:[ 1; 2; 3 ] ()
  in
  Alcotest.(check bool) "propagations counted" true
    (stats.Solver.s_propagations >= 2)

(* ------------------------------------------------------------------ *)
(* differential agreement                                              *)

let check_agreement ctx spec =
  let ast = parse spec in
  let g = Backends.solve Backends.Greedy ctx ast in
  let c = Backends.solve Backends.Clauses ctx ast in
  match (g, c) with
  | Ok gc, Ok cc ->
      if render gc <> render cc then
        Alcotest.failf "%s: backends disagree" spec
  | Error _, Error _ -> ()
  | Ok _, Error e ->
      Alcotest.failf "%s: clauses failed where greedy succeeded: %s" spec
        (Cerror.to_string e)
  | Error _, Ok cc ->
      (* a true divergence: legal only when the model satisfies the query *)
      if not (Concrete.satisfies cc ast) then
        Alcotest.failf "%s: divergent clause model violates the query" spec

let differential_universe () =
  let ctx = universe_ctx () in
  List.iter
    (fun name ->
      let spec =
        (* vendor MPIs only exist on their machines *)
        match name with
        | "bgq-mpi" -> "bgq-mpi =bgq %gcc"
        | "cray-mpi" -> "cray-mpi =cray_xe6 %gcc"
        | n -> n
      in
      check_agreement ctx spec)
    (Repository.package_names (Universe.repository ()))

let differential_battery () =
  let ctx = universe_ctx () in
  let packages =
    [ "libelf"; "libpng"; "mpileaks"; "libdwarf"; "python"; "dyninst";
      "lapack"; "callpath"; "hdf5"; "py-numpy" ]
  in
  let forms =
    [ ""; " %gcc"; " %intel"; " @1:"; " ^mvapich2"; " ^openmpi"; " ^mpi@2:" ]
  in
  List.iter
    (fun p -> List.iter (fun f -> check_agreement ctx (p ^ f)) forms)
    packages

(* the cornerstone as a property: agreement is byte-identical on every
   greedy-solvable random spec *)
let differential_property =
  let ctx = lazy (universe_ctx ()) in
  let gen =
    QCheck.Gen.(
      let pkg =
        oneofl
          [ "mpileaks"; "callpath"; "dyninst"; "libdwarf"; "libelf"; "hdf5";
            "boost"; "python"; "py-numpy"; "hypre"; "samrai"; "gperftools" ]
      in
      let constraint_ =
        oneofl [ ""; "+debug"; "~debug"; "%gcc"; "%gcc@4.7.3"; "@1:" ]
      in
      let dep =
        oneofl
          [ ""; " ^libelf@0.8.12"; " ^mvapich2"; " ^openmpi"; " ^zlib";
            " ^mpi@2:"; " ^boost@1.55.0" ]
      in
      let* p = pkg in
      let* c = constraint_ in
      let* d = dep in
      return (p ^ c ^ d))
  in
  QCheck.Test.make ~count:150
    ~name:"clause backend agrees byte-identically when greedy succeeds"
    (QCheck.make ~print:(fun s -> s) gen)
    (fun spec ->
      match Parser.parse spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok ast -> (
          let ctx = Lazy.force ctx in
          match Backends.solve Backends.Greedy ctx ast with
          | Error _ -> true
          | Ok gc -> (
              match Backends.solve Backends.Clauses ctx ast with
              | Error _ -> false
              | Ok cc -> render gc = render cc)))

(* satellite: the backtracking extension agrees with plain greedy whenever
   greedy succeeds (backtracking only ever explores when greedy fails) *)
let backtracking_agrees_property =
  let ctx = lazy (universe_ctx ()) in
  let gen =
    QCheck.Gen.(
      let pkg =
        oneofl
          [ "mpileaks"; "callpath"; "dyninst"; "libelf"; "python"; "hypre";
            "samrai"; "ares"; "lulesh" ]
      in
      let form = oneofl [ ""; " %gcc"; " ^mvapich2"; " ^openmpi"; " @1:" ] in
      let* p = pkg in
      let* f = form in
      return (p ^ f))
  in
  QCheck.Test.make ~count:120
    ~name:"concretize_backtracking agrees with concretize on greedy successes"
    (QCheck.make ~print:(fun s -> s) gen)
    (fun spec ->
      match Parser.parse spec with
      | Error _ -> QCheck.assume_fail ()
      | Ok ast -> (
          let ctx = Lazy.force ctx in
          match Concretizer.concretize ctx ast with
          | Error _ -> true
          | Ok g -> (
              match Concretizer.concretize_backtracking ctx ast with
              | Error _ -> false
              | Ok b -> Concrete.equal g b)))

(* ------------------------------------------------------------------ *)
(* §4.5 divergence: greedy dead-ends, the complete backend solves      *)

let hwloc_divergence () =
  let ctx = universe_ctx () in
  let ast = parse "mpileaks ^mpi+hwloc ^hwloc@1.9" in
  (* greedy commits to the site-ranked provider (mvapich2 -> hwloc@1.8)
     and dead-ends against the user's hwloc@1.9 *)
  (match Backends.solve Backends.Greedy ctx ast with
  | Ok _ -> Alcotest.fail "greedy should dead-end on the hwloc pattern"
  | Error (Cerror.Conflict _) -> ()
  | Error e -> Alcotest.failf "wrong greedy error: %s" (Cerror.to_string e));
  let outcome = Backends.solve_full Backends.Clauses ctx ast in
  match outcome.I.oc_result with
  | Error e -> Alcotest.failf "clauses failed: %s" (Cerror.to_string e)
  | Ok c ->
      Alcotest.(check bool) "model satisfies the query" true
        (Concrete.satisfies c ast);
      Alcotest.(check bool) "provider flipped to openmpi" true
        (Concrete.node c "openmpi" <> None);
      (match Concrete.node c "hwloc" with
      | Some n ->
          Alcotest.(check string) "hwloc pinned to 1.9" "1.9"
            (Version.to_string n.Concrete.version)
      | None -> Alcotest.fail "hwloc missing from the DAG");
      (* solved by unit propagation over the encoding, not by
         chronological backtracking: no solver conflicts, and exactly
         one oracle replay on top of round 0 *)
      Alcotest.(check int) "no solver conflicts"
        0 outcome.I.oc_stats.I.st_conflicts;
      Alcotest.(check int) "round 0 + one oracle replay" 2
        outcome.I.oc_stats.I.st_runs

(* ------------------------------------------------------------------ *)
(* unsat cores and conflict explanations (satellite 6)                 *)

let unsat_core_golden () =
  let ctx = universe_ctx () in
  let ast = parse "gerris ^mpich@1.4" in
  let outcome = Backends.solve_full Backends.Clauses ctx ast in
  (match outcome.I.oc_result with
  | Ok _ -> Alcotest.fail "gerris ^mpich@1.4 must be unsatisfiable"
  | Error _ -> ());
  match Backends.explanation Backends.Clauses outcome with
  | None -> Alcotest.fail "failed outcome must carry an explanation"
  | Some expl ->
      Alcotest.(check string) "rendered unsat core"
        "unsat core (clauses backend):\n\
         \  - the user spec requests gerris\n\
         \  - the user spec requests mpich@1.4\n\
         \  - ^mpich must be pulled in as a dependency or chosen as a \
         provider\n\
         \  - mpich@1.4.1 cannot provide mpi@2:\n\
         \  - mpich@1.4 cannot provide mpi@2:\n\
         \  - mpich must take one of its known versions"
        (Cerror.explain_to_string expl)

let greedy_pseudo_core () =
  let ctx = universe_ctx () in
  let ast = parse "gerris ^mpich@1.4" in
  let outcome = Backends.solve_full Backends.Greedy ctx ast in
  match Backends.explanation Backends.Greedy outcome with
  | None -> Alcotest.fail "failed outcome must carry an explanation"
  | Some expl ->
      let rendered = Cerror.explain_to_string expl in
      Alcotest.(check bool) "greedy heading" true
        (Astring.String.is_prefix
           ~affix:"blocked decision path (greedy backend):" rendered);
      Alcotest.(check bool) "shows the blocked decision" true
        (Astring.String.is_infix ~affix:"virtual mpi -> mpich" rendered);
      Alcotest.(check bool) "ends with the typed error" true
        (Astring.String.is_infix ~affix:"blocked: conflicting version"
           rendered)

(* both backends report the same typed error on true conflicts *)
let unsat_same_typed_error () =
  let ctx = universe_ctx () in
  List.iter
    (fun spec ->
      let ast = parse spec in
      match
        ( Backends.solve Backends.Greedy ctx ast,
          Backends.solve Backends.Clauses ctx ast )
      with
      | Error ge, Error ce ->
          Alcotest.(check string) (spec ^ ": same typed error")
            (Cerror.to_string ge) (Cerror.to_string ce)
      | _ -> Alcotest.failf "%s: expected both backends to fail" spec)
    [ "gerris ^mpich@1.4"; "libelf@0.9:0.10"; "dyninst ^libelf@0.9:0.10" ]

(* satellite 2: No_version lists nearest-miss candidates with the
   excluding constraint *)
let no_version_nearest () =
  let ctx = universe_ctx () in
  match Concretizer.concretize ctx (parse "dyninst ^libelf@0.9:0.10") with
  | Ok _ -> Alcotest.fail "expected No_version"
  | Error (Cerror.No_version { package; constraint_; nearest }) ->
      Alcotest.(check string) "package" "libelf" package;
      Alcotest.(check string) "constraint" "0.9:0.10" constraint_;
      Alcotest.(check bool) "newest candidate listed" true
        (List.mem_assoc "0.8.13" nearest);
      Alcotest.(check string) "why excluded"
        "excluded by @0.9:0.10 (the user spec)"
        (List.assoc "0.8.13" nearest);
      let rendered = Cerror.to_string (Cerror.No_version { package; constraint_; nearest }) in
      Alcotest.(check bool) "rendering lists candidates" true
        (Astring.String.is_infix ~affix:"candidate versions:" rendered)
  | Error e -> Alcotest.failf "wrong error: %s" (Cerror.to_string e)

(* ------------------------------------------------------------------ *)
(* encoding internals                                                  *)

let encoding_shape () =
  let ctx = universe_ctx () in
  let enc = Clauses.encode ctx (parse "mpileaks ^mpi+hwloc ^hwloc@1.9") in
  Alcotest.(check bool) "has variables" true (Clauses.nvars enc > 0);
  Alcotest.(check bool) "has clauses" true (Clauses.clause_list enc <> []);
  (* decision order covers every variable exactly once *)
  let ord = Clauses.order enc in
  Alcotest.(check int) "order covers all vars" (Clauses.nvars enc)
    (List.length (List.sort_uniq compare (List.map abs ord)));
  (* provider variables come first (optimization: provider choice
     dominates the result's shape) *)
  (match ord with
  | first :: _ ->
      let k = Clauses.var_to_string enc (abs first) in
      Alcotest.(check bool) "providers decided first" true
        (Astring.String.is_prefix ~affix:"Prov(" k)
  | [] -> Alcotest.fail "empty order");
  (* every clause's origin renders to a non-empty reason *)
  List.iter
    (fun (_, origin) ->
      if origin >= 0 then
        Alcotest.(check bool) "reason non-empty" true
          (String.length (Clauses.reason enc origin) > 0))
    (Clauses.clause_list enc)

let stats_surface () =
  let ctx = universe_ctx () in
  let outcome = Backends.solve_full Backends.Greedy ctx (parse "mpileaks") in
  Alcotest.(check bool) "greedy decisions counted" true
    (outcome.I.oc_stats.I.st_decisions > 0);
  Alcotest.(check int) "one greedy run" 1 outcome.I.oc_stats.I.st_runs;
  let line = I.stats_to_string outcome.I.oc_stats in
  Alcotest.(check bool) "stats line mentions decisions" true
    (Astring.String.is_infix ~affix:"decisions=" line);
  (* backend naming round-trips *)
  List.iter
    (fun b ->
      Alcotest.(check bool) "backend name round-trips" true
        (Backends.of_string (Backends.to_string b) = Some b))
    Backends.all

let () =
  Alcotest.run "solver"
    [
      ( "cdcl",
        [
          Alcotest.test_case "SAT with propagation" `Quick solver_sat;
          Alcotest.test_case "UNSAT core extraction" `Quick solver_unsat_core;
          Alcotest.test_case "propagation stats" `Quick
            solver_propagation_stats;
        ] );
      ( "differential",
        [
          Alcotest.test_case "whole universe agrees" `Quick
            differential_universe;
          Alcotest.test_case "constraint battery agrees" `Quick
            differential_battery;
          QCheck_alcotest.to_alcotest differential_property;
          QCheck_alcotest.to_alcotest backtracking_agrees_property;
        ] );
      ( "divergence",
        [
          Alcotest.test_case "§4.5 hwloc: greedy unsat, clauses sat" `Quick
            hwloc_divergence;
        ] );
      ( "explanations",
        [
          Alcotest.test_case "unsat core golden" `Quick unsat_core_golden;
          Alcotest.test_case "greedy pseudo-core" `Quick greedy_pseudo_core;
          Alcotest.test_case "same typed error on true conflicts" `Quick
            unsat_same_typed_error;
          Alcotest.test_case "No_version nearest-miss candidates" `Quick
            no_version_nearest;
        ] );
      ( "internals",
        [
          Alcotest.test_case "encoding shape" `Quick encoding_shape;
          Alcotest.test_case "stats and naming surface" `Quick stats_surface;
        ] );
    ]
