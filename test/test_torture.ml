(* The crash-consistency torture harness: kill an install at every write
   barrier (serial and -j4), recover, and hold the store invariants —
   the reloaded index is a prefix of the completed store, no unindexed
   orphans survive recovery, and re-running converges to byte-identical
   state. The harness itself does the per-kill assertions; these tests
   drive it across every boundary and sanity-check its accounting. *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Concretizer = Ospack_concretize.Concretizer
module Torture = Ospack_store.Torture
module Vfs = Ospack_vfs.Vfs

let repo =
  Repository.create
    [
      make_pkg "mpileaks"
        [ version "1.0"; depends_on "mpi"; depends_on "callpath" ];
      make_pkg "callpath" [ version "1.0"; depends_on "dyninst" ];
      make_pkg "dyninst" [ version "8.2"; depends_on "libelf" ];
      make_pkg "libelf" [ version "0.8.13" ];
      make_pkg "mpich" [ version "3.0.4"; provides "mpi@:3" ];
      make_pkg "openmpi" [ version "1.8.2"; provides "mpi@:2.2" ];
    ]

let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ]
let cctx = Concretizer.make_ctx ~compilers repo

let concretize spec =
  match Concretizer.concretize_string cctx spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "concretize %s: %s" spec e

let run_ok ?jobs ?every specs =
  match
    Torture.run ?jobs ?every ~repo ~compilers (List.map concretize specs)
  with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let every_boundary_serial () =
  let r = run_ok [ "mpileaks ^mpich" ] in
  Alcotest.(check int) "serial" 1 r.Torture.tr_jobs;
  Alcotest.(check bool) "a real install crosses many barriers" true
    (r.Torture.tr_barriers > 20);
  Alcotest.(check int) "every barrier was a kill point" r.Torture.tr_barriers
    r.Torture.tr_kills;
  (* some kills must land between prefix materialization and index
     durability, otherwise the recovery path was never exercised *)
  Alcotest.(check bool) "orphan recovery exercised" true
    (r.Torture.tr_orphans > 0);
  Alcotest.(check bool) "index-loss recovery exercised" true
    (r.Torture.tr_lost_nodes > 0)

let every_boundary_parallel () =
  (* two roots sharing the callpath/dyninst/libelf sub-DAG: crashes land
     inside a schedule with genuine cross-spec sharing *)
  let r = run_ok ~jobs:4 [ "mpileaks ^mpich"; "callpath" ] in
  Alcotest.(check int) "parallel" 4 r.Torture.tr_jobs;
  Alcotest.(check int) "every barrier was a kill point" r.Torture.tr_barriers
    r.Torture.tr_kills;
  Alcotest.(check bool) "orphan recovery exercised" true
    (r.Torture.tr_orphans > 0)

let sampling_and_validation () =
  let full = run_ok [ "libelf" ] in
  let sampled = run_ok ~every:7 [ "libelf" ] in
  Alcotest.(check int) "same reference barrier count" full.Torture.tr_barriers
    sampled.Torture.tr_barriers;
  Alcotest.(check int) "ceil(barriers / 7) kill points"
    ((full.Torture.tr_barriers + 6) / 7)
    sampled.Torture.tr_kills;
  (* the report renders *)
  Alcotest.(check bool) "report mentions kill points" true
    (Astring.String.is_infix ~affix:"kill point"
       (Torture.report_to_string full));
  (* argument validation *)
  let expect_error msg = function
    | Error _ -> ()
    | Ok _ -> Alcotest.fail msg
  in
  expect_error "jobs 0 rejected"
    (Torture.run ~jobs:0 ~repo ~compilers [ concretize "libelf" ]);
  expect_error "every 0 rejected"
    (Torture.run ~every:0 ~repo ~compilers [ concretize "libelf" ]);
  expect_error "empty spec list rejected"
    (Torture.run ~repo ~compilers [])

let () =
  Alcotest.run "torture"
    [
      ( "crash consistency",
        [
          Alcotest.test_case "every boundary, serial" `Quick
            every_boundary_serial;
          Alcotest.test_case "every boundary, -j4" `Quick
            every_boundary_parallel;
          Alcotest.test_case "sampling and validation" `Quick
            sampling_and_validation;
        ] );
    ]
