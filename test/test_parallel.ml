(* The deterministic parallel DAG installer: virtual-time worker pool,
   store equivalence across -j levels, failure poisoning, and the
   crash-consistency guarantee of the on-disk index. *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Concretizer = Ospack_concretize.Concretizer
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Builder = Ospack_buildsim.Builder
module Mirror = Ospack_buildsim.Mirror
module Vfs = Ospack_vfs.Vfs
module Obs = Ospack_obs.Obs
module Json = Ospack_json.Json

let repo =
  Repository.create
    [
      make_pkg "mpileaks"
        [ version "1.0"; depends_on "mpi"; depends_on "callpath" ];
      make_pkg "callpath" [ version "1.0"; depends_on "dyninst" ];
      make_pkg "dyninst" [ version "8.2"; depends_on "libelf" ];
      make_pkg "libelf" [ version "0.8.13" ];
      make_pkg "mpich" [ version "3.0.4"; provides "mpi@:3" ];
    ]

let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ]
let cctx = Concretizer.make_ctx ~compilers repo

let concretize ?(ctx = cctx) spec =
  match Concretizer.concretize_string ctx spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "concretize %s: %s" spec e

let index_json inst =
  Json.to_string (Database.to_json (Installer.database inst))

let outcome_name (o : Installer.outcome) =
  Concrete.root o.Installer.o_record.Database.r_spec

let install_par ?(repo = repo) ?obs ?mirror ~jobs specs =
  let inst = Installer.create ?obs ?mirror ~vfs:(Vfs.create ()) ~repo ~compilers () in
  match Installer.install_parallel inst ~jobs specs with
  | Ok r -> (inst, r)
  | Error e -> Alcotest.failf "install_parallel -j%d: %s" jobs e

(* --- determinism and store equivalence --- *)

let store_equivalence_across_j () =
  let spec = concretize "mpileaks ^mpich" in
  (* the serial installer is the reference store *)
  let serial = Installer.create ~vfs:(Vfs.create ()) ~repo ~compilers () in
  let serial_outcomes =
    match Installer.install serial spec with
    | Ok o -> o
    | Error e -> Alcotest.failf "serial install: %s" e
  in
  let reference = index_json serial in
  List.iter
    (fun jobs ->
      let inst, r = install_par ~jobs [ spec ] in
      Alcotest.(check int)
        (Printf.sprintf "-j%d installs every node" jobs)
        (List.length serial_outcomes)
        (List.length r.Installer.pr_outcomes);
      Alcotest.(check string)
        (Printf.sprintf "-j%d store identical to serial" jobs)
        reference (index_json inst);
      Alcotest.(check bool)
        (Printf.sprintf "-j%d makespan bounded by serialized time" jobs)
        true
        (r.Installer.pr_makespan <= r.Installer.pr_serial_seconds +. 1e-9);
      Alcotest.(check (float 1e-9))
        (Printf.sprintf "-j%d same serialized seconds" jobs)
        (Installer.total_build_seconds serial)
        r.Installer.pr_serial_seconds)
    [ 1; 2; 3; 4; 8 ]

let j1_matches_serial_order () =
  let spec = concretize "mpileaks ^mpich" in
  let serial = Installer.create ~vfs:(Vfs.create ()) ~repo ~compilers () in
  let serial_outcomes =
    match Installer.install serial spec with
    | Ok o -> o
    | Error e -> Alcotest.failf "serial install: %s" e
  in
  let _, r = install_par ~jobs:1 [ spec ] in
  Alcotest.(check (list string))
    "-j1 completion order is the serial topological order"
    (List.map outcome_name serial_outcomes)
    (List.map outcome_name r.Installer.pr_outcomes);
  Alcotest.(check (float 1e-9)) "-j1 makespan = serialized time"
    r.Installer.pr_serial_seconds r.Installer.pr_makespan;
  Alcotest.(check bool) "no failures" true (r.Installer.pr_failures = [])

let schedule_sanity () =
  let spec = concretize "mpileaks ^mpich" in
  let jobs = 3 in
  let _, r = install_par ~jobs [ spec ] in
  let slots = r.Installer.pr_schedule in
  Alcotest.(check int) "one slot per node" 5 (List.length slots);
  (* workers in range, and no two slots of one worker overlap *)
  List.iter
    (fun (s : Installer.slot) ->
      Alcotest.(check bool) "worker in range" true
        (s.Installer.sl_worker >= 0 && s.Installer.sl_worker < jobs))
    slots;
  List.iter
    (fun w ->
      let mine =
        List.filter (fun s -> s.Installer.sl_worker = w) slots
        |> List.sort (fun a b ->
               compare a.Installer.sl_start b.Installer.sl_start)
      in
      ignore
        (List.fold_left
           (fun prev_finish (s : Installer.slot) ->
             Alcotest.(check bool) "no overlap on one worker" true
               (s.Installer.sl_start >= prev_finish -. 1e-9);
             s.Installer.sl_finish)
           0.0 mine))
    [ 0; 1; 2 ];
  (* dependencies finish before dependents start *)
  let finish_of name =
    let s = List.find (fun s -> s.Installer.sl_node = name) slots in
    s.Installer.sl_finish
  in
  List.iter
    (fun (s : Installer.slot) ->
      List.iter
        (fun dep ->
          Alcotest.(check bool)
            (Printf.sprintf "%s starts after %s finishes" s.Installer.sl_node
               dep)
            true
            (finish_of dep <= s.Installer.sl_start +. 1e-9))
        (Concrete.node_exn spec s.Installer.sl_node).Concrete.deps)
    slots;
  let max_finish =
    List.fold_left
      (fun m (s : Installer.slot) -> max m s.Installer.sl_finish)
      0.0 slots
  in
  Alcotest.(check (float 1e-9)) "makespan is the last finish" max_finish
    r.Installer.pr_makespan

let wide_dag_speedup () =
  let leaves = List.init 8 (fun i -> Printf.sprintf "leaf%d" i) in
  let wide_repo =
    Repository.create
      (make_pkg "wideroot"
         (version "1.0" :: List.map (fun l -> depends_on l) leaves)
      :: List.map (fun l -> make_pkg l [ version "1.0" ]) leaves)
  in
  let ctx = Concretizer.make_ctx ~compilers wide_repo in
  let spec = concretize ~ctx "wideroot" in
  let _, r1 = install_par ~repo:wide_repo ~jobs:1 [ spec ] in
  let _, r4 = install_par ~repo:wide_repo ~jobs:4 [ spec ] in
  Alcotest.(check (float 1e-9)) "same work at every width"
    r1.Installer.pr_serial_seconds r4.Installer.pr_serial_seconds;
  let speedup = Installer.parallel_speedup r4 in
  Alcotest.(check bool)
    (Printf.sprintf "8 independent leaves at -j4 speed up >= 1.5 (got %.2f)"
       speedup)
    true (speedup >= 1.5)

let multi_spec_merging () =
  (* two specs sharing the dyninst sub-DAG: shared nodes schedule once *)
  let a = concretize "mpileaks ^mpich" in
  let b = concretize "dyninst" in
  let _, r = install_par ~jobs:4 [ a; b ] in
  Alcotest.(check int) "shared sub-DAG scheduled once" 5
    (List.length r.Installer.pr_schedule);
  let hashes =
    List.map (fun s -> s.Installer.sl_hash) r.Installer.pr_schedule
  in
  Alcotest.(check int) "hashes unique" 5
    (List.length (List.sort_uniq String.compare hashes));
  (* both roots are explicit in the merged install *)
  let db_of (inst, _) = Installer.database inst in
  let db = db_of (install_par ~jobs:2 [ a; b ]) in
  let explicit =
    List.filter (fun r -> r.Database.r_explicit) (Database.all db)
    |> List.map (fun r -> Concrete.root r.Database.r_spec)
    |> List.sort String.compare
  in
  Alcotest.(check (list string)) "both roots explicit"
    [ "dyninst"; "mpileaks" ] explicit

let jobs_validation () =
  let inst = Installer.create ~vfs:(Vfs.create ()) ~repo ~compilers () in
  match Installer.install_parallel inst ~jobs:0 [ concretize "libelf" ] with
  | Ok _ -> Alcotest.fail "jobs = 0 must be rejected"
  | Error e ->
      Alcotest.(check bool) "message names the bound" true
        (Astring.String.is_infix ~affix:"jobs must be >= 1" e)

(* --- observability: deterministic traces, scheduler counters --- *)

let trace_determinism () =
  let spec = concretize "mpileaks ^mpich" in
  let run () =
    let obs = Obs.create () in
    let _, r = install_par ~obs ~jobs:4 [ spec ] in
    Alcotest.(check bool) "no failures" true (r.Installer.pr_failures = []);
    Json.to_string ~indent:2 (Obs.to_chrome_trace obs)
  in
  let first = run () and second = run () in
  Alcotest.(check bool) "two -j4 traces byte-identical" true (first = second);
  Alcotest.(check bool) "trace mentions the schedule span" true
    (Astring.String.is_infix ~affix:"schedule" first);
  Alcotest.(check bool) "trace mentions worker spans" true
    (Astring.String.is_infix ~affix:"worker 3" first)

let scheduler_counters () =
  let spec = concretize "mpileaks ^mpich" in
  let obs = Obs.create () in
  let _, _ = install_par ~obs ~jobs:2 [ spec ] in
  Alcotest.(check int) "one dispatch per node" 5
    (Obs.counter obs "sched.dispatches");
  let hist = Obs.histograms obs in
  Alcotest.(check bool) "ready-queue histogram recorded" true
    (List.mem_assoc "sched.ready_queue" hist);
  let idle = List.assoc "sched.idle_seconds" hist in
  Alcotest.(check int) "idle sampled at every dispatch" 5
    idle.Obs.h_count

(* --- partial failure: poisoning, typed report, index consistency --- *)

let corrupted_mirror vfs =
  let mirror = Mirror.create vfs ~root:"/mirror" in
  ignore (Mirror.populate mirror repo);
  let version = Ospack_version.Version.of_string "8.2" in
  let path = "/mirror/" ^ Mirror.archive_rel ~name:"dyninst" ~version in
  (match Vfs.write_file vfs path "TAMPERED" with
  | Ok () -> ()
  | Error e -> Alcotest.failf "corrupt archive: %s" (Vfs.error_to_string e));
  mirror

let parallel_partial_failure () =
  let vfs = Vfs.create () in
  let mirror = corrupted_mirror vfs in
  let inst = Installer.create ~mirror ~vfs ~repo ~compilers () in
  let r =
    match
      Installer.install_parallel inst ~jobs:2 [ concretize "mpileaks ^mpich" ]
    with
    | Ok r -> r
    | Error e -> Alcotest.failf "scheduler error: %s" e
  in
  (* the failed node carries the builder's typed staging error *)
  (match r.Installer.pr_failures with
  | Installer.Failed
      { f_node = "dyninst"; f_error = Installer.Build_failure (Builder.Staging _); _ }
    :: _ ->
      ()
  | f :: _ -> Alcotest.failf "unexpected first failure: %s" (Installer.failure_to_string f)
  | [] -> Alcotest.fail "expected failures");
  (* only the dependents of dyninst are poisoned, with the cause named *)
  let poisoned =
    List.filter_map
      (function
        | Installer.Poisoned { p_node; p_failed_deps; _ } ->
            Some (p_node, p_failed_deps)
        | Installer.Failed _ -> None)
      r.Installer.pr_failures
  in
  Alcotest.(check (list (pair string (list string))))
    "dependents poisoned, causes named"
    [ ("callpath", [ "dyninst" ]); ("mpileaks", [ "dyninst" ]) ]
    (List.sort compare poisoned);
  (* the independent subtree kept building *)
  Alcotest.(check (slist string String.compare))
    "independent nodes still installed" [ "libelf"; "mpich" ]
    (List.map outcome_name r.Installer.pr_outcomes);
  (* crash consistency: the on-disk index reflects every completed node *)
  let fresh = Installer.create ~vfs ~repo ~compilers () in
  (match Installer.load_index fresh with
  | Ok n -> Alcotest.(check int) "survivors indexed on disk" 2 n
  | Error e -> Alcotest.failf "load_index: %s" e);
  Alcotest.(check (slist string String.compare))
    "indexed names are the survivors" [ "libelf"; "mpich" ]
    (List.map
       (fun rec_ -> Concrete.root rec_.Database.r_spec)
       (Database.all (Installer.database fresh)));
  (* the rendered report counts both classes *)
  let rendered = Installer.failures_to_string r.Installer.pr_failures in
  Alcotest.(check bool) "report counts failed and poisoned" true
    (Astring.String.is_infix ~affix:"1 node(s) failed (2 more" rendered)

let serial_failure_persists_index () =
  (* regression: a mid-DAG serial failure used to leave completed
     prefixes with no index record *)
  let vfs = Vfs.create () in
  let mirror = corrupted_mirror vfs in
  let inst = Installer.create ~mirror ~vfs ~repo ~compilers () in
  (match Installer.install inst (concretize "mpileaks ^mpich") with
  | Ok _ -> Alcotest.fail "corrupted archive must fail the install"
  | Error e ->
      Alcotest.(check bool) "serial error message unchanged" true
        (Astring.String.is_infix ~affix:"checksum mismatch" e));
  let survivors = Database.count (Installer.database inst) in
  Alcotest.(check bool) "something completed before the failure" true
    (survivors >= 1);
  let fresh = Installer.create ~vfs ~repo ~compilers () in
  match Installer.load_index fresh with
  | Ok n -> Alcotest.(check int) "index matches the survivors" survivors n
  | Error e -> Alcotest.failf "load_index: %s" e

let () =
  Alcotest.run "parallel"
    [
      ( "determinism",
        [
          Alcotest.test_case "store equivalence across -j" `Quick
            store_equivalence_across_j;
          Alcotest.test_case "-j1 matches the serial order" `Quick
            j1_matches_serial_order;
          Alcotest.test_case "schedule sanity" `Quick schedule_sanity;
          Alcotest.test_case "wide DAG speedup" `Quick wide_dag_speedup;
          Alcotest.test_case "multi-spec merging" `Quick multi_spec_merging;
          Alcotest.test_case "jobs validation" `Quick jobs_validation;
        ] );
      ( "observability",
        [
          Alcotest.test_case "byte-identical traces" `Quick trace_determinism;
          Alcotest.test_case "scheduler counters" `Quick scheduler_counters;
        ] );
      ( "failure handling",
        [
          Alcotest.test_case "poisoning + index consistency" `Quick
            parallel_partial_failure;
          Alcotest.test_case "serial failure persists index" `Quick
            serial_failure_persists_index;
        ] );
    ]
