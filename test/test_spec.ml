(* The spec language: lexer, the Fig. 3 grammar (incl. every Table 2
   example), printer round-trips, constraint intersection/satisfaction,
   and concrete spec DAGs with hashing. *)

module Ast = Ospack_spec.Ast
module Lexer = Ospack_spec.Lexer
module Parser = Ospack_spec.Parser
module Printer = Ospack_spec.Printer
module Constraint_ops = Ospack_spec.Constraint_ops
module Concrete = Ospack_spec.Concrete
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

let parse = Parser.parse_exn

let lexer_cases () =
  let toks s =
    match Lexer.tokenize s with
    | Ok ts -> ts
    | Error e -> Alcotest.failf "lex error: %s" e
  in
  Alcotest.(check int) "simple id" 1 (List.length (toks "mpileaks"));
  Alcotest.(check bool) "dash inside id" true
    (toks "openmpi-1.4" = [ Lexer.Id "openmpi-1.4" ]);
  Alcotest.(check bool) "dash after space is minus" true
    (toks "a -debug" = [ Lexer.Id "a"; Lexer.Minus; Lexer.Id "debug" ]);
  Alcotest.(check bool) "punctuation" true
    (toks "@+~%=^,:"
    = [ Lexer.At; Lexer.Plus; Lexer.Tilde; Lexer.Percent; Lexer.Equals;
        Lexer.Caret; Lexer.Comma; Lexer.Colon ]);
  Alcotest.(check bool) "bad character" true
    (Result.is_error (Lexer.tokenize "foo!bar"))

(* Table 2 of the paper: every example must parse to the meaning given *)
let table2 () =
  let t = parse "mpileaks" in
  Alcotest.(check string) "1: bare package" "mpileaks" t.Ast.root.Ast.name;
  Alcotest.(check bool) "1: unconstrained" true
    (Ast.node_is_unconstrained t.Ast.root);

  let t = parse "mpileaks@1.1.2" in
  Alcotest.(check (option string)) "2: version" (Some "1.1.2")
    (Option.map Version.to_string (Vlist.concrete t.Ast.root.Ast.versions));

  let t = parse "mpileaks@1.1.2 %gcc" in
  (match t.Ast.root.Ast.compiler with
  | Some c ->
      Alcotest.(check string) "3: compiler name" "gcc" c.Ast.c_name;
      Alcotest.(check bool) "3: default version" true (Vlist.is_any c.Ast.c_versions)
  | None -> Alcotest.fail "3: compiler expected");

  let t = parse "mpileaks@1.1.2 %intel@14.1 +debug" in
  (match t.Ast.root.Ast.compiler with
  | Some c ->
      Alcotest.(check string) "4: intel" "intel" c.Ast.c_name;
      Alcotest.(check bool) "4: 14.1" true (Vlist.mem (Version.of_string "14.1") c.Ast.c_versions)
  | None -> Alcotest.fail "4: compiler expected");
  Alcotest.(check (option bool)) "4: +debug" (Some true)
    (Ast.Smap.find_opt "debug" t.Ast.root.Ast.variants);

  let t = parse "mpileaks@1.1.2 =bgq" in
  Alcotest.(check (option string)) "5: platform" (Some "bgq") t.Ast.root.Ast.arch;

  let t = parse "mpileaks@1.1.2 ^mvapich2@1.9" in
  (match Ast.dep t "mvapich2" with
  | Some d ->
      Alcotest.(check bool) "6: dep version" true
        (Vlist.mem (Version.of_string "1.9") d.Ast.versions)
  | None -> Alcotest.fail "6: dependency expected");

  let t =
    parse
      "mpileaks @1.2:1.4 %gcc@4.7.5 -debug =bgq ^callpath @1.1 %gcc@4.7.2 \
       ^openmpi @1.4.7"
  in
  Alcotest.(check bool) "7: root version range" true
    (Vlist.mem (Version.of_string "1.3") t.Ast.root.Ast.versions);
  Alcotest.(check bool) "7: range excludes 1.5" false
    (Vlist.mem (Version.of_string "1.5") t.Ast.root.Ast.versions);
  Alcotest.(check (option bool)) "7: -debug disabled" (Some false)
    (Ast.Smap.find_opt "debug" t.Ast.root.Ast.variants);
  Alcotest.(check (option string)) "7: =bgq" (Some "bgq") t.Ast.root.Ast.arch;
  (match Ast.dep t "callpath" with
  | Some d ->
      (match d.Ast.compiler with
      | Some c -> Alcotest.(check string) "7: callpath compiler" "gcc" c.Ast.c_name
      | None -> Alcotest.fail "7: callpath compiler expected")
  | None -> Alcotest.fail "7: callpath expected");
  Alcotest.(check bool) "7: openmpi dep" true (Ast.dep t "openmpi" <> None)

let parser_details () =
  (* anonymous specs for when= clauses *)
  let t = parse "%gcc@:4" in
  Alcotest.(check string) "anonymous name" "" t.Ast.root.Ast.name;
  (* repeated version constraints intersect *)
  let t = parse "pkg@1.0: @:2.0" in
  Alcotest.(check bool) "intersected range" true
    (Vlist.mem (Version.of_string "1.5") t.Ast.root.Ast.versions
    && not (Vlist.mem (Version.of_string "2.5") t.Ast.root.Ast.versions));
  (* repeated dep constraints merge *)
  let t = parse "a ^b@1.0 ^b+x" in
  (match Ast.dep t "b" with
  | Some d ->
      Alcotest.(check (option bool)) "merged variant" (Some true)
        (Ast.Smap.find_opt "x" d.Ast.variants);
      Alcotest.(check bool) "merged version" true
        (Vlist.mem (Version.of_string "1.0") d.Ast.versions)
  | None -> Alcotest.fail "dep b expected");
  (* ~variant equals -variant *)
  let a = parse "p ~debug" and b = parse "p -debug" in
  Alcotest.(check bool) "tilde = minus" true (Ast.equal a b)

let parser_errors () =
  let fails s = Alcotest.(check bool) s true (Result.is_error (Parser.parse s)) in
  fails "";
  fails "a b";
  fails "a @";
  fails "a +";
  fails "a %";
  fails "a =";
  fails "a ^";
  fails "a ^@1.2" (* dependency must be named *);
  fails "a@1.2 @2.0" (* unsatisfiable version intersection *);
  fails "a+debug~debug" (* contradictory variant *);
  fails "a=bgq=linux" (* contradictory arch *);
  fails "a@2.0:1.0" (* empty range *);
  Alcotest.(check bool) "parse_node rejects deps" true
    (Result.is_error (Parser.parse_node "a ^b"))

let print_parse_roundtrip () =
  List.iter
    (fun s ->
      let t = parse s in
      let printed = Printer.to_string t in
      match Parser.parse printed with
      | Ok t2 ->
          Alcotest.(check bool) (s ^ " round-trips via " ^ printed) true
            (Ast.equal t t2)
      | Error e -> Alcotest.failf "%s printed as unparseable %s: %s" s printed e)
    [
      "mpileaks";
      "mpileaks@1.1.2 %intel@14.1 +debug ~shared =bgq";
      "mpileaks @1.2:1.4,1.6: ^callpath@1.1%gcc@4.7.2 ^openmpi@1.4.7";
      "%gcc@:4";
      "@2.4 +x -y =linux";
    ]

(* every form the Fig. 3 grammar can produce, one representative (or a
   few) per production: the printer must emit syntax the parser maps back
   to the same AST — parse (print (parse s)) = parse s *)
let roundtrip_every_form () =
  let check_rt s =
    let t = parse s in
    let printed = Printer.to_string t in
    match Parser.parse printed with
    | Ok t2 ->
        if not (Ast.equal t t2) then
          Alcotest.failf "%s printed as %s which parses differently" s
            printed
    | Error e -> Alcotest.failf "%s printed as unparseable %s: %s" s printed e
  in
  List.iter check_rt
    [
      (* bare package *)
      "mpileaks";
      (* version constraints: point, ranges open and closed, unions *)
      "mpileaks@1.1.2";
      "mpileaks@1.2:";
      "mpileaks@:1.4";
      "mpileaks@1.2:1.4";
      "mpileaks@1.2:1.4,1.6:";
      "mpileaks@1.0,1.2:1.4,2:";
      (* variants: enabled, disabled via ~ and via - *)
      "mpileaks+debug";
      "mpileaks~shared";
      "mpileaks -shared";
      "mpileaks+debug+mpi~shared";
      (* compilers: bare, versioned, version lists *)
      "mpileaks%gcc";
      "mpileaks%gcc@4.7.3";
      "mpileaks%gcc@4.7:4.9,5.1";
      "mpileaks%intel@14.1:";
      (* architecture *)
      "mpileaks=bgq";
      (* everything on one node *)
      "mpileaks@1.1.2%intel@14.1+debug~shared=bgq";
      (* dependencies: bare, constrained, fully constrained, several *)
      "mpileaks ^mpich";
      "mpileaks ^mpich@1.9";
      "mpileaks ^mpich@1.9%gcc@4.7.2+debug=linux";
      "mpileaks ^callpath@1.1 ^openmpi@1.4.7";
      "mpileaks@1.2:1.4%gcc@4.7.5-debug=bgq ^callpath@1.1%gcc@4.7.2 \
       ^openmpi@1.4.7";
      (* repeated constraints on the same node or dep merge before
         printing, so the printed form is the normalized one *)
      "pkg@1.0: @:2.0";
      "a ^b@1.0 ^b+x";
      (* anonymous specs (when= clauses): each constraint kind alone *)
      "@2.4";
      "+debug";
      "~shared";
      "=bgq";
      "%gcc@:4";
      "@2.4 +x -y =linux";
      "%gcc@4.7.3+mpi";
    ];
  (* and every package in the universe under a battery of constraint
     suffixes — names with dashes/digits must survive the printer too *)
  let suffixes = [ ""; "@1:"; "+debug"; "%gcc@4:"; "=linux"; " ^zlib@1:" ] in
  List.iter
    (fun name ->
      List.iter (fun suffix -> check_rt (name ^ suffix)) suffixes)
    (Ospack_package.Repository.package_names
       (Ospack_repo.Universe.repository ()))

(* random abstract specs for the round-trip property *)
let arb_spec_string =
  let open QCheck.Gen in
  let name = oneofl [ "alpha"; "beta2"; "lib-c"; "d_e" ] in
  let ver = oneofl [ "1.0"; "1.2.3"; "2:"; ":3"; "1.2:1.4"; "1,2:" ] in
  let constraint_ =
    oneof
      [
        map (fun v -> "@" ^ v) ver;
        oneofl [ "+debug"; "~shared"; "+mpi" ];
        map (fun v -> "%gcc@" ^ v) (oneofl [ "4.7"; "4.9.2" ]);
        return "%intel";
        oneofl [ "=bgq"; "=linux" ];
      ]
  in
  let node =
    let* n = name in
    let* cs = list_size (int_bound 3) constraint_ in
    return (n ^ String.concat "" cs)
  in
  let gen =
    let* root = node in
    let* deps = list_size (int_bound 2) node in
    return (String.concat " ^" (root :: deps))
  in
  QCheck.make ~print:(fun s -> s) gen

let roundtrip_prop =
  QCheck.Test.make ~name:"print . parse = id on random specs" ~count:300
    arb_spec_string
    (fun s ->
      match Parser.parse s with
      | Error _ -> QCheck.assume_fail ()
      | Ok t -> (
          match Parser.parse (Printer.to_string t) with
          | Ok t2 -> Ast.equal t t2
          | Error _ -> false))

let lexer_error_positions () =
  (match Lexer.tokenize "abc !def" with
  | Error msg ->
      Alcotest.(check bool) "names the char and position" true
        (Astring.String.is_infix ~affix:"'!'" msg
        && Astring.String.is_infix ~affix:"position 4" msg)
  | Ok _ -> Alcotest.fail "expected lex error");
  match Parser.parse "pkg @" with
  | Error msg ->
      Alcotest.(check bool) "parse error carries the source" true
        (Astring.String.is_infix ~affix:"\"pkg @\"" msg)
  | Ok _ -> Alcotest.fail "expected parse error"

let compiler_version_lists () =
  (* compiler constraints accept full version lists *)
  let t = parse "p %gcc@4.7:4.9,5.1" in
  match t.Ast.root.Ast.compiler with
  | Some c ->
      let memv s = Vlist.mem (Version.of_string s) c.Ast.c_versions in
      Alcotest.(check bool) "4.8 in range" true (memv "4.8");
      Alcotest.(check bool) "5.1 in list" true (memv "5.1");
      Alcotest.(check bool) "5.0 not in list" false (memv "5.0")
  | None -> Alcotest.fail "compiler expected"

let universe_names_parse () =
  (* every package name in the universe is a valid spec in its own right
     and round-trips *)
  List.iter
    (fun name ->
      match Parser.parse name with
      | Ok t ->
          Alcotest.(check string) (name ^ " parses to itself") name
            (Printer.to_string t)
      | Error e -> Alcotest.failf "%s does not parse: %s" name e)
    (Ospack_package.Repository.package_names
       (Ospack_repo.Universe.repository ()))

(* --- constraint ops --- *)

let node_of s = (parse s).Ast.root

let intersect_cases () =
  let ok a b =
    match Constraint_ops.intersect_node (node_of a) (node_of b) with
    | Ok n -> n
    | Error c -> Alcotest.failf "unexpected conflict: %s" (Constraint_ops.conflict_to_string c)
  in
  let n = ok "pkg@1.0:2.0" "pkg@1.5:3.0" in
  Alcotest.(check bool) "version intersection" true
    (Vlist.mem (Version.of_string "1.7") n.Ast.versions
    && not (Vlist.mem (Version.of_string "2.5") n.Ast.versions));
  let n = ok "pkg+debug" "pkg=bgq%gcc" in
  Alcotest.(check (option bool)) "variants merge" (Some true)
    (Ast.Smap.find_opt "debug" n.Ast.variants);
  Alcotest.(check (option string)) "arch carried" (Some "bgq") n.Ast.arch;
  let n = ok "%gcc@4:" "%gcc@:5" in
  (match n.Ast.compiler with
  | Some c ->
      Alcotest.(check bool) "compiler versions intersect" true
        (Vlist.mem (Version.of_string "4.5") c.Ast.c_versions)
  | None -> Alcotest.fail "compiler expected");
  (* anonymous merges with named *)
  let n = ok "+debug" "pkg@1.0" in
  Alcotest.(check string) "name adopted" "pkg" n.Ast.name

let conflict_cases () =
  let conflict_on field a b =
    match Constraint_ops.intersect_node (node_of a) (node_of b) with
    | Ok _ -> Alcotest.failf "expected %s conflict for %s vs %s" field a b
    | Error c -> Alcotest.(check string) (a ^ " vs " ^ b) field c.Constraint_ops.field
  in
  conflict_on "version" "pkg@1.0" "pkg@2.0";
  conflict_on "compiler" "pkg%gcc" "pkg%intel";
  conflict_on "compiler" "pkg%gcc@4" "pkg%gcc@5";
  conflict_on "variant debug" "pkg+debug" "pkg~debug";
  conflict_on "architecture" "pkg=bgq" "pkg=linux";
  conflict_on "name" "a" "b"

let satisfies_cases () =
  let sat c k =
    Constraint_ops.node_satisfies ~candidate:(node_of c) ~constraint_:(node_of k)
  in
  (* pinned candidate against constraints *)
  Alcotest.(check bool) "version member" true (sat "p@1.2.3%gcc@4.9.2=bgq" "@1.2:");
  Alcotest.(check bool) "version non-member" false (sat "p@1.1%gcc@4.9.2" "@1.2:");
  Alcotest.(check bool) "prefix version" true (sat "p@1.2.3" "@1.2");
  Alcotest.(check bool) "compiler" true (sat "p%gcc@4.9.2" "%gcc");
  Alcotest.(check bool) "compiler version range" true (sat "p%gcc@4.9.2" "%gcc@4:");
  Alcotest.(check bool) "wrong compiler" false (sat "p%gcc@4.9.2" "%intel");
  Alcotest.(check bool) "unpinned compiler fails strictly" false (sat "p" "%gcc");
  Alcotest.(check bool) "variant match" true (sat "p+debug" "+debug");
  Alcotest.(check bool) "variant mismatch" false (sat "p~debug" "+debug");
  Alcotest.(check bool) "variant unset fails strictly" false (sat "p" "+debug");
  Alcotest.(check bool) "arch" true (sat "p=bgq" "=bgq");
  Alcotest.(check bool) "anonymous matches any name" true (sat "p@2.4" "@2.4")

(* intersection agrees with satisfaction: a pinned candidate satisfying
   both constraint nodes satisfies their intersection, and vice versa *)
let arb_constraint_node =
  let open QCheck.Gen in
  let gen =
    let* vs = oneofl [ ""; "@1:"; "@:2"; "@1.5"; "@1:3" ] in
    let* var = oneofl [ ""; "+debug"; "~debug"; "+mpi" ] in
    let* comp = oneofl [ ""; "%gcc"; "%gcc@4:"; "%intel" ] in
    let* arch = oneofl [ ""; "=bgq"; "=linux" ] in
    return ("p" ^ vs ^ var ^ comp ^ arch)
  in
  QCheck.make ~print:(fun s -> s) gen

let arb_pinned_candidate =
  let open QCheck.Gen in
  let gen =
    let* v = oneofl [ "1.0"; "1.5"; "2.0"; "3.5" ] in
    let* var = oneofl [ "+debug"; "~debug"; "+debug+mpi"; "~debug~mpi" ] in
    let* comp = oneofl [ "%gcc@4.9.2"; "%intel@15.0.1" ] in
    let* arch = oneofl [ "=bgq"; "=linux" ] in
    return ("p@" ^ v ^ var ^ comp ^ arch)
  in
  QCheck.make ~print:(fun s -> s) gen

let intersect_vs_satisfies =
  QCheck.Test.make ~count:500
    ~name:"pinned candidate satisfies (a ∩ b) iff it satisfies both"
    (QCheck.triple arb_pinned_candidate arb_constraint_node arb_constraint_node)
    (fun (cand, a, b) ->
      let candidate = node_of cand in
      let na = node_of a and nb = node_of b in
      let sat c = Constraint_ops.node_satisfies ~candidate ~constraint_:c in
      match Constraint_ops.intersect_node na nb with
      | Ok merged -> Bool.equal (sat merged) (sat na && sat nb)
      | Error _ ->
          (* unsatisfiable intersection: no pinned candidate can satisfy
             both sides at once *)
          not (sat na && sat nb))

(* --- concrete specs --- *)

let smap_of kvs =
  List.fold_left (fun m (k, v) -> Concrete.Smap.add k v m) Concrete.Smap.empty kvs

let cnode ?(compiler = ("gcc", "4.9.2")) ?(variants = []) ?(deps = [])
    ?(provided = []) name version =
  {
    Concrete.name;
    version = Version.of_string version;
    compiler = (fst compiler, Version.of_string (snd compiler));
    variants = smap_of variants;
    arch = "linux-x86_64";
    deps;
    provided =
      List.map (fun (v, body) -> (v, Vlist.of_string body)) provided;
  }

let sample () =
  match
    Concrete.make ~root:"app"
      [
        cnode "app" "1.0" ~deps:[ "libx"; "mpi-impl" ];
        cnode "libx" "2.0" ~deps:[ "libz" ];
        cnode "libz" "3.1";
        cnode "mpi-impl" "1.9" ~provided:[ ("mpi", ":2.2") ] ~deps:[ "libz" ];
      ]
  with
  | Ok c -> c
  | Error e -> Alcotest.failf "sample invalid: %a" Concrete.pp_validation_error e

let concrete_validation () =
  (match Concrete.make ~root:"app" [ cnode "app" "1.0" ~deps:[ "ghost" ] ] with
  | Error (Concrete.Missing_dep { dep; _ }) ->
      Alcotest.(check string) "missing dep" "ghost" dep
  | _ -> Alcotest.fail "expected missing dep");
  (match Concrete.make ~root:"ghost" [ cnode "app" "1.0" ] with
  | Error (Concrete.Missing_root _) -> ()
  | _ -> Alcotest.fail "expected missing root");
  match
    Concrete.make ~root:"a"
      [ cnode "a" "1" ~deps:[ "b" ]; cnode "b" "1" ~deps:[ "a" ] ]
  with
  | Error (Concrete.Cyclic _) -> ()
  | _ -> Alcotest.fail "expected cycle"

let concrete_queries () =
  let c = sample () in
  Alcotest.(check int) "node count" 4 (Concrete.node_count c);
  Alcotest.(check string) "root" "app" (Concrete.root c);
  let order = Concrete.topological_order c in
  Alcotest.(check bool) "libz before libx" true
    (let pos x =
       let rec go i = function
         | [] -> -1
         | y :: r -> if x = y then i else go (i + 1) r
       in
       go 0 order
     in
     pos "libz" < pos "libx" && pos "libx" < pos "app");
  let sub = Concrete.subspec c "libx" in
  Alcotest.(check int) "subspec size" 2 (Concrete.node_count sub);
  Alcotest.(check string) "subspec root" "libx" (Concrete.root sub)

let concrete_satisfies () =
  let c = sample () in
  let q s = Parser.parse_exn s in
  Alcotest.(check bool) "root name" true (Concrete.satisfies c (q "app"));
  Alcotest.(check bool) "root version" true (Concrete.satisfies c (q "app@1.0"));
  Alcotest.(check bool) "wrong version" false (Concrete.satisfies c (q "app@2.0"));
  Alcotest.(check bool) "dep constraint" true (Concrete.satisfies c (q "app ^libz@3.1"));
  Alcotest.(check bool) "dep wrong version" false
    (Concrete.satisfies c (q "app ^libz@4:"));
  (* virtual interface queries hit the provider's provided list *)
  Alcotest.(check bool) "virtual dep" true (Concrete.satisfies c (q "app ^mpi"));
  Alcotest.(check bool) "virtual versioned" true
    (Concrete.satisfies c (q "app ^mpi@2:"));
  Alcotest.(check bool) "virtual out of range" false
    (Concrete.satisfies c (q "app ^mpi@3:"));
  Alcotest.(check bool) "absent package" false
    (Concrete.satisfies c (q "app ^nothere"))

let concrete_hashing () =
  let c = sample () in
  let h = Concrete.root_hash c in
  Alcotest.(check int) "hash length" 8 (String.length h);
  (* same DAG -> same hash *)
  Alcotest.(check string) "deterministic" h (Concrete.root_hash (sample ()));
  (* shared sub-DAGs have equal hashes regardless of the enclosing spec
     (paper Fig. 9) *)
  let sub_in_c = Concrete.dag_hash c "libx" in
  let standalone = Concrete.subspec c "libx" in
  Alcotest.(check string) "sub-DAG hash stable" sub_in_c
    (Concrete.root_hash standalone);
  (* changing a leaf changes every hash up the chain but not siblings *)
  let changed =
    match
      Concrete.make ~root:"app"
        [
          cnode "app" "1.0" ~deps:[ "libx"; "mpi-impl" ];
          cnode "libx" "2.0" ~deps:[ "libz" ];
          cnode "libz" "3.2" (* bumped *);
          cnode "mpi-impl" "1.9" ~provided:[ ("mpi", ":2.2") ] ~deps:[ "libz" ];
        ]
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "invalid"
  in
  Alcotest.(check bool) "root hash changed" true
    (Concrete.root_hash changed <> h);
  Alcotest.(check bool) "libx hash changed" true
    (Concrete.dag_hash changed "libx" <> Concrete.dag_hash c "libx");
  (* variants and compilers feed the hash *)
  let with_variant =
    match
      Concrete.make ~root:"a" [ cnode "a" "1" ~variants:[ ("debug", true) ] ]
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "invalid"
  and without =
    match
      Concrete.make ~root:"a" [ cnode "a" "1" ~variants:[ ("debug", false) ] ]
    with
    | Ok c -> c
    | Error _ -> Alcotest.fail "invalid"
  in
  Alcotest.(check bool) "variant affects hash" true
    (Concrete.root_hash with_variant <> Concrete.root_hash without)

let concrete_rendering () =
  let c = sample () in
  let line = Concrete.to_string c in
  Alcotest.(check bool) "starts with root" true
    (String.length line > 3 && String.sub line 0 3 = "app");
  Alcotest.(check bool) "mentions deps" true
    (Astring.String.is_infix ~affix:"^libz@3.1" line);
  let tree = Concrete.tree_string c in
  Alcotest.(check bool) "tree shows compiler" true
    (Astring.String.is_infix ~affix:"%gcc@4.9.2" tree)

let () =
  Alcotest.run "spec"
    [
      ("lexer", [ Alcotest.test_case "tokens" `Quick lexer_cases ]);
      ( "parser",
        [
          Alcotest.test_case "paper Table 2" `Quick table2;
          Alcotest.test_case "details" `Quick parser_details;
          Alcotest.test_case "errors" `Quick parser_errors;
          Alcotest.test_case "print/parse round-trip" `Quick print_parse_roundtrip;
          Alcotest.test_case "round-trip, every grammar form" `Quick
            roundtrip_every_form;
          Alcotest.test_case "error positions" `Quick lexer_error_positions;
          Alcotest.test_case "compiler version lists" `Quick
            compiler_version_lists;
          Alcotest.test_case "universe names parse" `Quick universe_names_parse;
          QCheck_alcotest.to_alcotest roundtrip_prop;
        ] );
      ( "constraints",
        [
          Alcotest.test_case "intersection" `Quick intersect_cases;
          Alcotest.test_case "conflicts" `Quick conflict_cases;
          Alcotest.test_case "satisfaction" `Quick satisfies_cases;
          QCheck_alcotest.to_alcotest intersect_vs_satisfies;
        ] );
      ( "concrete",
        [
          Alcotest.test_case "validation" `Quick concrete_validation;
          Alcotest.test_case "queries" `Quick concrete_queries;
          Alcotest.test_case "satisfies" `Quick concrete_satisfies;
          Alcotest.test_case "hashing" `Quick concrete_hashing;
          Alcotest.test_case "rendering" `Quick concrete_rendering;
        ] );
    ]
