(* Views (paper §4.3.1) and extension activation (§4.2). *)

module View = Ospack_views.View
module Extensions = Ospack_views.Extensions
module Vfs = Ospack_vfs.Vfs
module Config = Ospack_config.Config
module Concrete = Ospack_spec.Concrete
module Version = Ospack_version.Version
module Vlist = Ospack_version.Vlist

let cnode ?(compiler = ("gcc", "4.9.2")) ?(deps = []) ?(provided = []) name
    version =
  {
    Concrete.name;
    version = Version.of_string version;
    compiler = (fst compiler, Version.of_string (snd compiler));
    variants = Concrete.Smap.empty;
    arch = "linux-x86_64";
    deps;
    provided = List.map (fun (v, b) -> (v, Vlist.of_string b)) provided;
  }

let spec ?compiler ?(mpi = None) name version =
  let nodes =
    match mpi with
    | None -> [ cnode ?compiler name version ]
    | Some (mname, mver) ->
        [
          cnode ?compiler name version ~deps:[ mname ];
          cnode ?compiler mname mver ~provided:[ ("mpi", ":3") ];
        ]
  in
  match Concrete.make ~root:name nodes with
  | Ok c -> c
  | Error _ -> failwith "bad spec"

let expand_rules () =
  let s = spec ~mpi:(Some ("openmpi", "1.8.2")) "mpileaks" "1.0" in
  Alcotest.(check string) "package/version/mpi"
    "/opt/mpileaks-1.0-openmpi"
    (View.expand_rule "/opt/${PACKAGE}-${VERSION}-${MPINAME}" s);
  Alcotest.(check string) "compiler variables"
    "/opt/gcc-4.9.2/mpileaks"
    (View.expand_rule "/opt/${COMPILER}-${COMPILER_VERSION}/${PACKAGE}" s);
  Alcotest.(check string) "nompi fallback" "/opt/zlib-nompi"
    (View.expand_rule "/opt/${PACKAGE}-${MPINAME}" (spec "zlib" "1.2.8"));
  Alcotest.(check string) "hash variable expands to 8 chars"
    ("/" ^ Concrete.root_hash s)
    (View.expand_rule "/${HASH}" s);
  Alcotest.(check string) "unknown variable left verbatim" "/x/${NOPE}"
    (View.expand_rule "/x/${NOPE}" s)

let sync_links () =
  let vfs = Vfs.create () in
  let s1 = spec "mpileaks" "1.0" in
  ignore (Vfs.write_file vfs "/prefix1/bin/mpileaks" "x");
  let reports =
    View.sync vfs ~config:Config.empty
      ~rules:[ "/views/${PACKAGE}-${VERSION}" ]
      ~installed:[ (s1, "/prefix1") ]
  in
  Alcotest.(check int) "one link" 1 (List.length reports);
  let r = List.hd reports in
  Alcotest.(check string) "link path" "/views/mpileaks-1.0" r.View.lr_link;
  Alcotest.(check string) "target" "/prefix1" r.View.lr_target;
  (* the link actually works on the filesystem *)
  Alcotest.(check bool) "readable through the view" true
    (Vfs.read_file vfs "/views/mpileaks-1.0/bin/mpileaks" = Ok "x")

let conflict_resolution () =
  let vfs = Vfs.create () in
  (* two versions collide on a version-less link: newer wins *)
  let old_s = spec "tool" "1.0" and new_s = spec "tool" "2.0" in
  let reports =
    View.sync vfs ~config:Config.empty
      ~rules:[ "/views/${PACKAGE}" ]
      ~installed:[ (old_s, "/old"); (new_s, "/new") ]
  in
  let r = List.hd reports in
  Alcotest.(check string) "newer version wins" "/new" r.View.lr_target;
  Alcotest.(check (list string)) "loser recorded" [ "/old" ] r.View.lr_shadowed;
  (* compiler_order overrides the version preference (§4.3.1) *)
  let icc_s = spec ~compiler:("intel", "14.0.3") "tool" "1.0" in
  let cfg = Config.of_assoc [ ("compiler_order", "intel, gcc") ] in
  let reports =
    View.sync vfs ~config:cfg
      ~rules:[ "/views2/${PACKAGE}" ]
      ~installed:[ (new_s, "/gcc-new"); (icc_s, "/icc-old") ]
  in
  let r = List.hd reports in
  Alcotest.(check string) "site compiler preference wins over version"
    "/icc-old" r.View.lr_target

let three_way_conflict () =
  (* three specs colliding on one link: the winner fold walks a two-deep
     rest list, and the outcome must not depend on insertion order *)
  let a = spec "tool" "1.0" and b = spec "tool" "2.0" and c = spec "tool" "3.0" in
  let run installed =
    let vfs = Vfs.create () in
    List.hd
      (View.sync vfs ~config:Config.empty
         ~rules:[ "/views/${PACKAGE}" ]
         ~installed)
  in
  let r = run [ (a, "/a"); (b, "/b"); (c, "/c") ] in
  Alcotest.(check string) "newest of three wins" "/c" r.View.lr_target;
  Alcotest.(check (list string)) "both losers recorded" [ "/a"; "/b" ]
    r.View.lr_shadowed;
  let r = run [ (c, "/c"); (a, "/a"); (b, "/b") ] in
  Alcotest.(check string) "order-independent winner" "/c" r.View.lr_target;
  Alcotest.(check (list string)) "order-independent losers" [ "/a"; "/b" ]
    r.View.lr_shadowed

let sync_updates () =
  let vfs = Vfs.create () in
  let v1 = spec "tool" "1.0" in
  ignore
    (View.sync vfs ~config:Config.empty ~rules:[ "/v/${PACKAGE}" ]
       ~installed:[ (v1, "/p1") ]);
  (* a new install takes over the link on re-sync *)
  let v2 = spec "tool" "2.0" in
  ignore
    (View.sync vfs ~config:Config.empty ~rules:[ "/v/${PACKAGE}" ]
       ~installed:[ (v1, "/p1"); (v2, "/p2") ]);
  Alcotest.(check (result string (of_pp Vfs.pp_error))) "link moved" (Ok "/p2")
    (Vfs.readlink vfs "/v/tool")

(* --- extensions (§4.2) --- *)

let setup_ext () =
  let vfs = Vfs.create () in
  (* python prefix with its own payload *)
  ignore (Vfs.write_file vfs "/py/bin/python" "interpreter");
  ignore (Vfs.mkdir_p vfs "/py/lib/python2.7/site-packages");
  (* numpy extension prefix *)
  ignore
    (Vfs.write_file vfs "/numpy/lib/python2.7/site-packages/numpy/__init__.py"
       "# numpy");
  ignore
    (Vfs.write_file vfs "/numpy/lib/python2.7/site-packages/extensions.pth"
       "/numpy/lib/python2.7/site-packages/numpy\n");
  vfs

let pth_merge ~rel =
  if Astring.String.is_suffix ~affix:".pth" rel then
    Some Extensions.line_union_merge
  else None

let activate_deactivate () =
  let vfs = setup_ext () in
  (match
     Extensions.activate vfs ~merge:pth_merge ~ext_name:"py-numpy"
       ~ext_prefix:"/numpy" ~target_prefix:"/py" ()
   with
  | Ok rels -> Alcotest.(check int) "two payload files" 2 (List.length rels)
  | Error e -> Alcotest.failf "activate: %s" e);
  (* the module is now visible inside the python prefix, as if installed *)
  Alcotest.(check bool) "module linked in" true
    (Vfs.is_file vfs "/py/lib/python2.7/site-packages/numpy/__init__.py");
  Alcotest.(check (list (pair string string))) "registry"
    [ ("py-numpy", "/numpy") ]
    (Extensions.active vfs ~target_prefix:"/py");
  Alcotest.(check bool) "double activation refused" true
    (Result.is_error
       (Extensions.activate vfs ~merge:pth_merge ~ext_name:"py-numpy"
          ~ext_prefix:"/numpy" ~target_prefix:"/py" ()));
  (* deactivate restores the pristine prefix *)
  (match
     Extensions.deactivate vfs ~ext_name:"py-numpy" ~ext_prefix:"/numpy"
       ~target_prefix:"/py"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deactivate: %s" e);
  Alcotest.(check bool) "links removed" false
    (Vfs.exists vfs "/py/lib/python2.7/site-packages/numpy/__init__.py");
  Alcotest.(check bool) "pth removed" false
    (Vfs.exists vfs "/py/lib/python2.7/site-packages/extensions.pth");
  Alcotest.(check (list (pair string string))) "registry cleared" []
    (Extensions.active vfs ~target_prefix:"/py")

let pth_merging () =
  let vfs = setup_ext () in
  (* a second extension that also ships extensions.pth *)
  ignore
    (Vfs.write_file vfs "/scipy/lib/python2.7/site-packages/scipy/__init__.py"
       "# scipy");
  ignore
    (Vfs.write_file vfs "/scipy/lib/python2.7/site-packages/extensions.pth"
       "/scipy/lib/python2.7/site-packages/scipy\n");
  let act name prefix =
    match
      Extensions.activate vfs ~merge:pth_merge ~ext_name:name
        ~ext_prefix:prefix ~target_prefix:"/py" ()
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "activate %s: %s" name e
  in
  act "py-numpy" "/numpy";
  act "py-scipy" "/scipy";
  (match Vfs.read_file vfs "/py/lib/python2.7/site-packages/extensions.pth" with
  | Ok content ->
      Alcotest.(check bool) "both lines merged" true
        (Astring.String.is_infix ~affix:"numpy" content
        && Astring.String.is_infix ~affix:"scipy" content)
  | Error _ -> Alcotest.fail "merged pth missing");
  (* deactivating one removes only its lines *)
  (match
     Extensions.deactivate vfs ~ext_name:"py-numpy" ~ext_prefix:"/numpy"
       ~target_prefix:"/py"
   with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "deactivate: %s" e);
  match Vfs.read_file vfs "/py/lib/python2.7/site-packages/extensions.pth" with
  | Ok content ->
      Alcotest.(check bool) "scipy line kept" true
        (Astring.String.is_infix ~affix:"scipy" content);
      Alcotest.(check bool) "numpy line gone" false
        (Astring.String.is_infix ~affix:"numpy" content)
  | Error _ -> Alcotest.fail "pth should remain for scipy"

let conflict_rollback () =
  let vfs = setup_ext () in
  (* an extension colliding on a non-mergeable file *)
  ignore (Vfs.write_file vfs "/evil/bin/python" "impostor");
  ignore (Vfs.write_file vfs "/evil/share/doc" "docs");
  (match
     Extensions.activate vfs ~merge:pth_merge ~ext_name:"evil"
       ~ext_prefix:"/evil" ~target_prefix:"/py" ()
   with
  | Ok _ -> Alcotest.fail "conflict expected"
  | Error msg ->
      Alcotest.(check bool) "names the conflicting path" true
        (Astring.String.is_infix ~affix:"bin/python" msg));
  (* rollback: nothing from the failed activation remains *)
  Alcotest.(check bool) "no partial links" false (Vfs.exists vfs "/py/share/doc");
  Alcotest.(check string) "original file intact" "interpreter"
    (Result.value (Vfs.read_file vfs "/py/bin/python") ~default:"?");
  Alcotest.(check (list (pair string string))) "not registered" []
    (Extensions.active vfs ~target_prefix:"/py")

let () =
  Alcotest.run "views"
    [
      ( "views",
        [
          Alcotest.test_case "rule expansion" `Quick expand_rules;
          Alcotest.test_case "link materialization" `Quick sync_links;
          Alcotest.test_case "conflict preference (§4.3.1)" `Quick
            conflict_resolution;
          Alcotest.test_case "three-way conflict" `Quick three_way_conflict;
          Alcotest.test_case "re-sync updates links" `Quick sync_updates;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "activate/deactivate (§4.2)" `Quick
            activate_deactivate;
          Alcotest.test_case "pth merging" `Quick pth_merging;
          Alcotest.test_case "conflict rolls back" `Quick conflict_rollback;
        ] );
    ]
