(* The hardened binary cache: crash-safe entry writes (torture at every
   barrier), token-boundary relocation, extraction that clears stale
   orphans, legacy-entry compatibility, the simulated mirror fleet
   (deterministic zipf traces, retry/failover, source-build fallback),
   and splicing a cached binary onto a different dependency. *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Concretizer = Ospack_concretize.Concretizer
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Buildcache = Ospack_store.Buildcache
module Cachefleet = Ospack_store.Cachefleet
module Loader = Ospack_buildsim.Loader
module Env = Ospack_buildsim.Env
module Vfs = Ospack_vfs.Vfs

let repo =
  Repository.create
    [
      make_pkg "dyninst"
        [ version "8.2"; depends_on "libelf"; depends_on "libdwarf" ];
      make_pkg "libdwarf" [ version "20130729"; depends_on "libelf" ];
      make_pkg "libelf" [ version "0.8.13"; version "0.8.12" ];
      make_pkg "zlib" [ version "1.2.8" ];
    ]

let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ]
let cctx = Concretizer.make_ctx ~compilers repo

let concretize spec =
  match Concretizer.concretize_string cctx spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "concretize %s: %s" spec e

let ok name = function
  | Ok _ -> ()
  | Error e -> Alcotest.failf "%s: %s" name (Vfs.error_to_string e)

(* a small hand-built prefix: a relocatable file, a symlink, a dir *)
let mk_prefix vfs prefix =
  ok "mkdir" (Vfs.mkdir_p vfs (prefix ^ "/bin"));
  ok "write"
    (Vfs.write_file vfs (prefix ^ "/bin/tool") ("prefix=" ^ prefix ^ "\n"));
  ok "link"
    (Vfs.symlink vfs ~target:(prefix ^ "/bin/tool") ~link:(prefix ^ "/current"))

let record spec prefix =
  {
    Database.r_spec = spec;
    r_hash = Concrete.root_hash spec;
    r_prefix = prefix;
    r_explicit = true;
    r_external = false;
    r_build_seconds = 1.0;
  }

let save_exn cache ~install_root r =
  match Buildcache.save cache ~install_root r with
  | Ok () -> ()
  | Error e -> Alcotest.failf "save: %s" (Buildcache.error_to_string e)

(* --- crash torture at every write barrier of a save ------------------ *)

let save_crash_torture () =
  let spec = concretize "libelf" in
  let hash = Concrete.root_hash spec in
  let world () =
    let vfs = Vfs.create () in
    mk_prefix vfs "/r1/pkg";
    (vfs, Buildcache.create vfs ~root:"/cache")
  in
  (* reference run: count the durability boundaries a save crosses *)
  let ref_vfs, ref_cache = world () in
  let b0 = Vfs.write_barriers ref_vfs in
  save_exn ref_cache ~install_root:"/r1" (record spec "/r1/pkg");
  let barriers = Vfs.write_barriers ref_vfs - b0 in
  Alcotest.(check bool) "save crosses several barriers" true (barriers >= 2);
  for k = 1 to barriers do
    let vfs, cache = world () in
    Vfs.set_fault_plan vfs ~mode:Vfs.Crash [ k ];
    (match Buildcache.save cache ~install_root:"/r1" (record spec "/r1/pkg") with
    | Ok () -> Alcotest.failf "kill point %d: save survived a crash" k
    | Error _ -> ());
    Vfs.clear_fault_plan vfs;
    (* the entry is absent or fully valid — never truncated *)
    if Buildcache.has cache ~hash then (
      match
        Buildcache.extract cache ~hash ~install_root:"/r1" ~prefix:"/chk/pkg"
      with
      | Ok _ ->
          Alcotest.(check bool)
            (Printf.sprintf "kill point %d: surviving entry extracts" k)
            true
            (Vfs.is_file vfs "/chk/pkg/bin/tool")
      | Error e ->
          Alcotest.failf "kill point %d: surviving entry corrupt: %s" k
            (Buildcache.error_to_string e));
    (* listing sweeps interrupted [.tmp] litter and never reports it *)
    let listed = Buildcache.cached_hashes cache in
    List.iter
      (fun h ->
        if Astring.String.is_suffix ~affix:".tmp" h then
          Alcotest.failf "kill point %d: tmp litter listed: %s" k h)
      listed;
    List.iter
      (fun (p, kind) ->
        if kind <> Vfs.Dir && Astring.String.is_suffix ~affix:".tmp" p then
          Alcotest.failf "kill point %d: tmp litter survived the sweep: %s" k p)
      (Vfs.walk vfs "/cache");
    (* a rerun of the same save repairs the cache completely *)
    save_exn cache ~install_root:"/r1" (record spec "/r1/pkg");
    match
      Buildcache.extract cache ~hash ~install_root:"/r2" ~prefix:"/out/pkg"
    with
    | Ok _ ->
        (match Vfs.read_file vfs "/out/pkg/bin/tool" with
        | Ok c ->
            Alcotest.(check string)
              (Printf.sprintf "kill point %d: repaired entry relocates" k)
              "prefix=/r2/pkg\n" c
        | Error e ->
            Alcotest.failf "kill point %d: read: %s" k (Vfs.error_to_string e))
    | Error e ->
        Alcotest.failf "kill point %d: re-save did not repair: %s" k
          (Buildcache.error_to_string e)
  done

(* transient faults are typed, so the fleet can retry them; everything
   else is terminal *)
let transient_classification () =
  let vfs = Vfs.create () in
  mk_prefix vfs "/r1/pkg";
  let cache = Buildcache.create vfs ~root:"/cache" in
  let spec = concretize "libelf" in
  Vfs.set_fault_plan vfs ~mode:Vfs.Fail_op [ 1 ];
  (match Buildcache.save cache ~install_root:"/r1" (record spec "/r1/pkg") with
  | Ok () -> Alcotest.fail "save survived an armed fault plan"
  | Error e ->
      Alcotest.(check bool) "injected fault classified transient" true
        (Buildcache.transient e));
  Vfs.clear_fault_plan vfs;
  match Buildcache.extract cache ~hash:"nope" ~install_root:"/r1" ~prefix:"/d"
  with
  | Ok _ -> Alcotest.fail "missing entry extracted"
  | Error e ->
      Alcotest.(check bool) "a miss is not transient" false
        (Buildcache.transient e)

(* --- relocation respects path-token boundaries ----------------------- *)

let relocate_boundaries () =
  let r = Buildcache.relocate ~from_root:"/opt/spack" ~to_root:"/new/root" in
  Alcotest.(check string) "plain occurrence relocates" "prefix=/new/root/pkg\n"
    (r "prefix=/opt/spack/pkg\n");
  Alcotest.(check string) "exact match relocates" "/new/root" (r "/opt/spack");
  Alcotest.(check string) "sibling root /opt/spack2 untouched"
    "lib=/opt/spack2/lib" (r "lib=/opt/spack2/lib");
  Alcotest.(check string) "embedding root /usr/opt/spack untouched"
    "doc=/usr/opt/spack" (r "doc=/usr/opt/spack");
  Alcotest.(check string) "colon-separated search path relocates"
    "/new/root/lib:/other/lib" (r "/opt/spack/lib:/other/lib");
  (* longest prefix wins, and replacements never chain *)
  Alcotest.(check string) "longest pair wins" "/b/x"
    (Buildcache.relocate_many
       ~pairs:[ ("/opt/spack", "/a"); ("/opt/spack/sub", "/b") ]
       "/opt/spack/sub/x");
  Alcotest.(check string) "no chained rewrites" "/b"
    (Buildcache.relocate_many ~pairs:[ ("/a", "/b"); ("/b", "/c") ] "/a")

(* --- extraction over a stale prefix clears orphans ------------------- *)

let extract_clears_orphans () =
  let vfs = Vfs.create () in
  let cache = Buildcache.create vfs ~root:"/cache" in
  let old_spec = concretize "libelf" in
  let new_spec = concretize "libelf@0.8.12" in
  ok "mkdir" (Vfs.mkdir_p vfs "/r1/old/bin");
  ok "write" (Vfs.write_file vfs "/r1/old/bin/orphan" "old payload");
  ok "mkdir" (Vfs.mkdir_p vfs "/r1/new/bin");
  ok "write" (Vfs.write_file vfs "/r1/new/bin/tool" "new payload");
  save_exn cache ~install_root:"/r1" (record old_spec "/r1/old");
  save_exn cache ~install_root:"/r1" (record new_spec "/r1/new");
  let extract spec =
    match
      Buildcache.extract cache
        ~hash:(Concrete.root_hash spec)
        ~install_root:"/r1" ~prefix:"/dest/pkg"
    with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "extract: %s" (Buildcache.error_to_string e)
  in
  extract old_spec;
  Alcotest.(check bool) "first entry materialized" true
    (Vfs.is_file vfs "/dest/pkg/bin/orphan");
  (* a different entry lands on the same prefix: the old payload must
     not survive as a stale orphan next to the new files *)
  extract new_spec;
  Alcotest.(check bool) "second entry materialized" true
    (Vfs.is_file vfs "/dest/pkg/bin/tool");
  Alcotest.(check bool) "stale orphan cleared" false
    (Vfs.is_file vfs "/dest/pkg/bin/orphan")

(* --- legacy entries (no file_count) still load ----------------------- *)

let legacy_entries () =
  let module Json = Ospack_json.Json in
  let vfs = Vfs.create () in
  let cache = Buildcache.create vfs ~root:"/cache" in
  let spec = concretize "libelf" in
  let hash = Concrete.root_hash spec in
  let entry =
    Json.Obj
      [
        ("format", Json.Int 1);
        ("install_root", Json.String "/r1");
        ("prefix", Json.String "/r1/pkg");
        ("spec", Concrete.to_json spec);
        ( "files",
          Json.List
            [
              Json.Obj
                [
                  ("rel", Json.String "bin/tool");
                  ("kind", Json.String "file");
                  ("content", Json.String "prefix=/r1/pkg\n");
                ];
            ] );
      ]
  in
  (* pre-shard layout: a flat file directly under the cache root *)
  ok "write"
    (Vfs.write_file vfs ("/cache/" ^ hash ^ ".json") (Json.to_string entry));
  Alcotest.(check bool) "legacy flat entry found" true
    (Buildcache.has cache ~hash);
  Alcotest.(check (list string)) "legacy entry listed" [ hash ]
    (Buildcache.cached_hashes cache);
  (match Buildcache.entry_spec cache ~hash with
  | Ok stored ->
      Alcotest.(check string) "legacy spec round-trips" hash
        (Concrete.root_hash stored)
  | Error e ->
      Alcotest.failf "legacy entry_spec: %s" (Buildcache.error_to_string e));
  match
    Buildcache.extract cache ~hash ~install_root:"/r2" ~prefix:"/dest/pkg"
  with
  | Ok _ ->
      (* without a recorded count, truncation is undetectable by design:
         the entry extracts leniently with whatever files it lists *)
      (match Vfs.read_file vfs "/dest/pkg/bin/tool" with
      | Ok c ->
          Alcotest.(check string) "legacy entry extracts and relocates"
            "prefix=/r2/pkg\n" c
      | Error e -> Alcotest.failf "read: %s" (Vfs.error_to_string e))
  | Error e ->
      Alcotest.failf "legacy extract: %s" (Buildcache.error_to_string e)

(* --- the mirror fleet ------------------------------------------------ *)

let fleet_world () =
  let vfs = Vfs.create () in
  let specs =
    List.map
      (fun s ->
        let c = concretize s in
        let prefix = "/r1/" ^ Concrete.root_hash c in
        mk_prefix vfs prefix;
        (c, record c prefix))
      [ "libelf"; "libelf@0.8.12"; "zlib" ]
  in
  let stock root keep =
    let cache = Buildcache.create vfs ~root in
    List.iteri
      (fun i (_, r) -> if keep i then save_exn cache ~install_root:"/r1" r)
      specs;
    cache
  in
  (* near carries the popular head; far carries everything real *)
  let near = stock "/mirrors/near" (fun i -> i < 2) in
  let far = stock "/mirrors/far" (fun _ -> true) in
  let items =
    List.map
      (fun (c, (r : Database.record)) ->
        {
          Cachefleet.it_name = Concrete.node_to_string (Concrete.root_node c);
          it_hash = r.Database.r_hash;
          it_build_seconds = 5.0;
        })
      specs
    (* a ghost entry no mirror carries: always a source-build fallback *)
    @ [
        {
          Cachefleet.it_name = "ghost";
          it_hash = "ffffffffffffffff";
          it_build_seconds = 30.0;
        };
      ]
  in
  let mk_fleet () =
    Cachefleet.create
      [
        Cachefleet.mirror ~latency:0.01 ~name:"near" near;
        Cachefleet.mirror ~latency:0.05 ~name:"far" far;
      ]
  in
  (mk_fleet, items)

let fleet_deterministic () =
  let mk_fleet, items = fleet_world () in
  let config =
    { Cachefleet.default_config with fc_requests = 400; fc_clients = 40 }
  in
  let r1 = Cachefleet.run (mk_fleet ()) config items in
  let r2 = Cachefleet.run (mk_fleet ()) config items in
  Alcotest.(check string) "same seed, byte-identical report"
    (Cachefleet.report_to_string r1)
    (Cachefleet.report_to_string r2);
  Alcotest.(check int) "every request hits or falls back" config.fc_requests
    (r1.Cachefleet.rp_hits + r1.rp_fallback_builds);
  Alcotest.(check bool) "clients drawn from the pool" true
    (r1.rp_clients > 1 && r1.rp_clients <= config.Cachefleet.fc_clients);
  (* zipf: rank 1 must dominate the tail *)
  (match (r1.rp_by_package, List.rev r1.rp_by_package) with
  | (_, top) :: _, (_, bottom) :: _ ->
      Alcotest.(check bool) "zipf skew visible" true (top > bottom)
  | _ -> Alcotest.fail "no per-package accounting");
  let diff_seed = Cachefleet.run (mk_fleet ()) { config with fc_seed = 7 } items in
  Alcotest.(check bool) "a different seed reshuffles the trace" true
    (Cachefleet.report_to_string diff_seed
    <> Cachefleet.report_to_string r1)

let fleet_failover_and_fallback () =
  let mk_fleet, items = fleet_world () in
  let config =
    {
      Cachefleet.default_config with
      fc_requests = 400;
      fc_clients = 40;
      fc_fault_every = 5;
    }
  in
  let r = Cachefleet.run (mk_fleet ()) config items in
  Alcotest.(check bool) "transient faults retried" true (r.Cachefleet.rp_retries > 0);
  Alcotest.(check bool) "double faults fail over" true (r.rp_failovers > 0);
  Alcotest.(check bool) "faults accounted per mirror" true
    (List.exists (fun (m : Cachefleet.mirror) -> m.m_faults > 0) r.rp_mirrors);
  (* zlib lives only on the far mirror: the chain must reach it *)
  (match r.rp_mirrors with
  | [ near; far ] ->
      Alcotest.(check bool) "near mirror misses the tail" true
        (near.Cachefleet.m_misses > 0);
      Alcotest.(check bool) "far mirror serves what near lacks" true
        (far.Cachefleet.m_hits > 0)
  | _ -> Alcotest.fail "expected two mirrors");
  let ghost_requests =
    try List.assoc "ghost" r.rp_by_package with Not_found -> 0
  in
  Alcotest.(check bool) "ghost entry requested" true (ghost_requests > 0);
  Alcotest.(check bool) "every ghost request built from source" true
    (r.rp_fallback_builds >= ghost_requests);
  Alcotest.(check bool) "fallback builds charged their cost" true
    (r.rp_fallback_seconds >= 30.0 *. float_of_int ghost_requests);
  Alcotest.(check int) "hits + fallbacks still cover the trace"
    config.fc_requests
    (r.rp_hits + r.rp_fallback_builds)

(* --- splicing -------------------------------------------------------- *)

let splice_roundtrip () =
  let vfs = Vfs.create () in
  let cache = Buildcache.create vfs ~root:"/cache" in
  let inst = Installer.create ~vfs ~repo ~compilers ~cache () in
  let target = concretize "dyninst" in
  let old_hash = Concrete.root_hash target in
  (match Installer.install inst target with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install dyninst: %s" e);
  (match Installer.push_to_cache inst cache with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "push: %s" e);
  let replacement = concretize "libelf@0.8.12" in
  (match Installer.install inst replacement with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "install libelf@0.8.12: %s" e);
  let sp =
    match Installer.splice inst ~hash:old_hash ~replacement with
    | Ok r -> r
    | Error e -> Alcotest.failf "splice: %s" e
  in
  Alcotest.(check string) "old hash reported" old_hash sp.Installer.sp_old_hash;
  Alcotest.(check bool) "root hash recomputed" true
    (sp.sp_new_hash <> sp.sp_old_hash);
  Alcotest.(check string) "replaced dependency named" "libelf" sp.sp_replaced;
  Alcotest.(check bool) "rpaths rewired" true (sp.sp_rewired > 0);
  Alcotest.(check bool) "loader verified the spliced prefix" true
    (sp.sp_resolved > 0);
  let new_prefix = sp.sp_record.Database.r_prefix in
  (* the spliced binary links the replacement and runs bare *)
  (match Vfs.read_file vfs (new_prefix ^ "/bin/dyninst") with
  | Ok content ->
      Alcotest.(check bool) "rpath points at libelf-0.8.12" true
        (Astring.String.is_infix ~affix:"libelf-0.8.12" content);
      Alcotest.(check bool) "no rpath left on libelf-0.8.13" false
        (Astring.String.is_infix ~affix:"libelf-0.8.13" content)
  | Error e ->
      Alcotest.failf "spliced binary missing: %s" (Vfs.error_to_string e));
  Alcotest.(check bool) "spliced binary runs with an empty env" true
    (Loader.can_run vfs ~path:(new_prefix ^ "/bin/dyninst") ~env:Env.empty);
  let db = Installer.database inst in
  (* the original install survives untouched *)
  (match Database.find_by_hash db old_hash with
  | Some orig ->
      Alcotest.(check bool) "original prefix intact" true
        (Vfs.is_file vfs (orig.Database.r_prefix ^ "/bin/dyninst"))
  | None -> Alcotest.fail "original record lost");
  (* libdwarf rehashed transitively: an alias record keeps the spliced
     DAG resolvable at the old prefix without a rebuild *)
  (match Database.find_by_name db "libdwarf" with
  | [ a; b ] ->
      Alcotest.(check bool) "alias shares the built prefix" true
        (a.Database.r_prefix = b.Database.r_prefix);
      Alcotest.(check bool) "alias carries the spliced hash" true
        (a.Database.r_hash <> b.Database.r_hash)
  | records ->
      Alcotest.failf "expected libdwarf + alias, got %d records"
        (List.length records));
  (* error surface: no-op, root, and non-dependency splices are typed *)
  (match Installer.splice inst ~hash:old_hash ~replacement:(concretize "libelf") with
  | Ok _ -> Alcotest.fail "no-op splice accepted"
  | Error e ->
      Alcotest.(check bool) "no-op splice named" true
        (Astring.String.is_infix ~affix:"already the installed dependency" e));
  (match Installer.splice inst ~hash:old_hash ~replacement:target with
  | Ok _ -> Alcotest.fail "root splice accepted"
  | Error e ->
      Alcotest.(check bool) "root splice refused" true
        (Astring.String.is_infix ~affix:"cannot replace the root package" e));
  match Installer.splice inst ~hash:old_hash ~replacement:(concretize "zlib")
  with
  | Ok _ -> Alcotest.fail "non-dependency splice accepted"
  | Error e ->
      Alcotest.(check bool) "non-dependency splice refused" true
        (Astring.String.is_infix ~affix:"does not depend on" e)

let () =
  Alcotest.run "buildcache"
    [
      ( "crash safety",
        [
          Alcotest.test_case "save tortured at every write barrier" `Quick
            save_crash_torture;
          Alcotest.test_case "transient fault classification" `Quick
            transient_classification;
        ] );
      ( "relocation",
        [
          Alcotest.test_case "path-token boundary rules" `Quick
            relocate_boundaries;
        ] );
      ( "extraction",
        [
          Alcotest.test_case "stale orphans cleared" `Quick
            extract_clears_orphans;
          Alcotest.test_case "legacy entries without file_count" `Quick
            legacy_entries;
        ] );
      ( "mirror fleet",
        [
          Alcotest.test_case "deterministic zipf trace" `Quick
            fleet_deterministic;
          Alcotest.test_case "retry, failover, and source fallback" `Quick
            fleet_failover_and_fallback;
        ] );
      ( "splicing",
        [ Alcotest.test_case "cached binary respliced" `Quick splice_roundtrip ] );
    ]
