(* The critical-path profiler: hand-computed ASAP/ALAP values on known
   DAG shapes, the CP = -j∞ makespan identity on real installer
   schedules, the slack-of-critical-nodes-is-zero invariant, rendering
   determinism, the JSONL event log, and the baseline regression gate. *)

open Ospack_package.Package
module Repository = Ospack_package.Repository
module Compilers = Ospack_config.Compilers
module Concretizer = Ospack_concretize.Concretizer
module Concrete = Ospack_spec.Concrete
module Installer = Ospack_store.Installer
module Universe = Ospack_repo.Universe
module Vfs = Ospack_vfs.Vfs
module Obs = Ospack_obs.Obs
module Profile = Ospack_obs.Profile
module Baseline = Ospack_obs.Baseline
module Json = Ospack_json.Json

let feq = Alcotest.(check (float 1e-9))

let node ?(deps = []) id cost =
  { Profile.nd_id = id; nd_label = id; nd_cost = cost; nd_deps = deps }

let analyze ?(jobs = 1) ?(slots = []) nodes =
  match
    Profile.analyze { Profile.in_jobs = jobs; in_nodes = nodes; in_slots = slots }
  with
  | Ok p -> p
  | Error e -> Alcotest.failf "analyze: %s" e

let row p id =
  match List.find_opt (fun r -> r.Profile.r_id = id) p.Profile.p_rows with
  | Some r -> r
  | None -> Alcotest.failf "no row for %s" id

(* --- hand-computed shapes --- *)

let chain () =
  (* a(2) -> b(3) -> c(5): everything is critical *)
  let p =
    analyze
      [ node "a" 2.0; node "b" 3.0 ~deps:[ "a" ]; node "c" 5.0 ~deps:[ "b" ] ]
  in
  feq "cp" 10.0 p.Profile.p_cp_seconds;
  feq "serial" 10.0 p.Profile.p_serial_seconds;
  Alcotest.(check (list string)) "cp path" [ "a"; "b"; "c" ] p.Profile.p_cp_nodes;
  List.iter
    (fun id ->
      let r = row p id in
      Alcotest.(check bool) (id ^ " critical") true r.Profile.r_critical;
      feq (id ^ " slack") 0.0 r.Profile.r_slack)
    [ "a"; "b"; "c" ];
  feq "b es" 2.0 (row p "b").Profile.r_es;
  feq "c ef" 10.0 (row p "c").Profile.r_ef

let diamond () =
  (* a(1) -> {b(4), c(2)} -> d(3): the b arm carries the CP; c has
     exactly cost(b) - cost(c) = 2 s of slack *)
  let p =
    analyze
      [
        node "a" 1.0;
        node "b" 4.0 ~deps:[ "a" ];
        node "c" 2.0 ~deps:[ "a" ];
        node "d" 3.0 ~deps:[ "b"; "c" ];
      ]
  in
  feq "cp" 8.0 p.Profile.p_cp_seconds;
  Alcotest.(check (list string)) "cp path" [ "a"; "b"; "d" ] p.Profile.p_cp_nodes;
  let c = row p "c" in
  Alcotest.(check bool) "c off the cp" false c.Profile.r_critical;
  feq "c slack" 2.0 c.Profile.r_slack;
  feq "c ls" 3.0 c.Profile.r_ls;
  feq "b slack" 0.0 (row p "b").Profile.r_slack

let fan () =
  (* four independent sources into one sink: CP = longest source + sink *)
  let p =
    analyze
      [
        node "a" 5.0; node "b" 3.0; node "c" 2.0; node "d" 1.0;
        node "sink" 1.0 ~deps:[ "a"; "b"; "c"; "d" ];
      ]
  in
  feq "cp" 6.0 p.Profile.p_cp_seconds;
  feq "serial" 12.0 p.Profile.p_serial_seconds;
  Alcotest.(check (list string)) "cp path" [ "a"; "sink" ] p.Profile.p_cp_nodes;
  feq "b slack" 2.0 (row p "b").Profile.r_slack;
  feq "c slack" 3.0 (row p "c").Profile.r_slack;
  feq "d slack" 4.0 (row p "d").Profile.r_slack

let bad_inputs () =
  let expect_error name input =
    match Profile.analyze input with
    | Ok _ -> Alcotest.failf "%s: expected an error" name
    | Error _ -> ()
  in
  expect_error "duplicate id"
    { Profile.in_jobs = 1; in_nodes = [ node "a" 1.0; node "a" 2.0 ]; in_slots = [] };
  expect_error "unknown dep"
    {
      Profile.in_jobs = 1;
      in_nodes = [ node "a" 1.0 ~deps:[ "ghost" ] ];
      in_slots = [];
    };
  expect_error "cycle"
    {
      Profile.in_jobs = 1;
      in_nodes = [ node "a" 1.0 ~deps:[ "b" ]; node "b" 1.0 ~deps:[ "a" ] ];
      in_slots = [];
    }

let schedule_attribution () =
  (* two workers, the recorded schedule places b after a's finish *)
  let slots =
    [
      { Profile.st_id = "a"; st_worker = 0; st_start = 0.0; st_finish = 2.0 };
      { Profile.st_id = "c"; st_worker = 1; st_start = 0.0; st_finish = 1.0 };
      { Profile.st_id = "b"; st_worker = 1; st_start = 2.0; st_finish = 5.0 };
    ]
  in
  let p =
    analyze ~jobs:2 ~slots
      [ node "a" 2.0; node "c" 1.0; node "b" 3.0 ~deps:[ "a" ] ]
  in
  feq "makespan" 5.0 p.Profile.p_makespan;
  feq "cp" 5.0 p.Profile.p_cp_seconds;
  feq "efficiency" 1.0 p.Profile.p_efficiency;
  feq "speedup" 1.2 p.Profile.p_speedup;
  let w0, w1 =
    match p.Profile.p_workers with
    | [ w0; w1 ] -> (w0, w1)
    | ws -> Alcotest.failf "expected 2 worker rows, got %d" (List.length ws)
  in
  Alcotest.(check int) "w0 dispatches" 1 w0.Profile.w_dispatches;
  feq "w0 busy" 2.0 w0.Profile.w_busy;
  feq "w0 idle" 3.0 w0.Profile.w_idle;
  feq "w1 busy" 4.0 w1.Profile.w_busy;
  feq "w1 util" 0.8 w1.Profile.w_utilization;
  Alcotest.(check (option int)) "b placed on w1" (Some 1)
    (row p "b").Profile.r_worker

(* --- real installer schedules --- *)

let repo =
  Repository.create
    [
      make_pkg "mpileaks"
        [ version "1.0"; depends_on "mpi"; depends_on "callpath" ];
      make_pkg "callpath" [ version "1.0"; depends_on "dyninst" ];
      make_pkg "dyninst" [ version "8.2"; depends_on "libelf" ];
      make_pkg "libelf" [ version "0.8.13" ];
      make_pkg "mpich" [ version "3.0.4"; provides "mpi@:3" ];
    ]

let compilers = Compilers.create [ Compilers.toolchain "gcc" "4.9.2" ]

let concretize ?(ctx = Concretizer.make_ctx ~compilers repo) spec =
  match Concretizer.concretize_string ctx spec with
  | Ok c -> c
  | Error e -> Alcotest.failf "concretize %s: %s" spec e

let profile_install ?(repo = repo) ?(compilers = compilers) ~jobs specs =
  let inst = Installer.create ~vfs:(Vfs.create ()) ~repo ~compilers () in
  match Installer.install_parallel inst ~jobs specs with
  | Error e -> Alcotest.failf "install_parallel -j%d: %s" jobs e
  | Ok r -> (
      if r.Installer.pr_failures <> [] then
        Alcotest.failf "-j%d: %s" jobs
          (Installer.failures_to_string r.Installer.pr_failures);
      match Profile.analyze (Installer.profile_input ~specs r) with
      | Ok p -> p
      | Error e -> Alcotest.failf "analyze: %s" e)

let installer_identities () =
  let spec = concretize "mpileaks ^mpich" in
  let n = Concrete.node_count spec in
  (* -j1: makespan is the serial time *)
  let p1 = profile_install ~jobs:1 [ spec ] in
  feq "-j1 makespan = serial" p1.Profile.p_serial_seconds p1.Profile.p_makespan;
  (* jobs >= nodes is the -j∞ (ASAP) schedule: makespan = CP exactly *)
  let pinf = profile_install ~jobs:n [ spec ] in
  feq "-j∞ makespan = CP" pinf.Profile.p_cp_seconds pinf.Profile.p_makespan;
  feq "-j∞ efficiency = 1" 1.0 pinf.Profile.p_efficiency;
  (* the CP is a property of the DAG, not the schedule *)
  feq "cp invariant across -j" p1.Profile.p_cp_seconds
    pinf.Profile.p_cp_seconds;
  (* critical nodes have exactly zero slack, and the path is one chain *)
  List.iter
    (fun r ->
      if r.Profile.r_critical then feq (r.Profile.r_id ^ " slack") 0.0 r.Profile.r_slack)
    pinf.Profile.p_rows;
  Alcotest.(check bool) "cp nonempty" true (pinf.Profile.p_cp_nodes <> [])

let fig10_suite_batch () =
  (* the bench's seven-package batch through the universe repository *)
  let repo = Universe.repository () in
  let compilers = Universe.compilers in
  let ctx =
    Concretizer.make_ctx ~config:Universe.default_config ~compilers repo
  in
  let specs =
    List.map
      (fun name -> concretize ~ctx name)
      [ "libelf"; "libpng"; "mpileaks"; "libdwarf"; "python"; "dyninst"; "lapack" ]
  in
  let p4 = profile_install ~repo ~compilers ~jobs:4 specs in
  let n = List.length p4.Profile.p_rows in
  Alcotest.(check bool) "suite merges into >7 nodes" true (n > 7);
  Alcotest.(check bool) "efficiency <= 1" true
    (p4.Profile.p_efficiency <= 1.0 +. 1e-9);
  Alcotest.(check bool) "speedup > 1 at -j4" true (p4.Profile.p_speedup > 1.0);
  let pinf = profile_install ~repo ~compilers ~jobs:n specs in
  feq "suite -j∞ makespan = CP" pinf.Profile.p_cp_seconds
    pinf.Profile.p_makespan;
  feq "suite cp invariant" p4.Profile.p_cp_seconds pinf.Profile.p_cp_seconds

let rendering_determinism () =
  let spec = concretize "mpileaks ^mpich" in
  let render () =
    let p = profile_install ~jobs:2 [ spec ] in
    (Profile.to_string p, Profile.to_jsonl p, Json.to_string (Profile.to_json p))
  in
  let a = render () and b = render () in
  Alcotest.(check bool) "report byte-identical" true (a = b);
  let text, jsonl, _ = a in
  Alcotest.(check bool) "timeline legend present" true
    (Astring.String.is_infix ~affix:"a=" text);
  (* every JSONL line parses and carries a profile.* event type *)
  List.iter
    (fun line ->
      if line <> "" then
        match Json.of_string line with
        | Error e -> Alcotest.failf "bad JSONL line: %s" e
        | Ok j -> (
            match Option.bind (Json.member "ev" j) Json.get_string with
            | Some ("profile.summary" | "profile.node" | "profile.worker") ->
                ()
            | _ -> Alcotest.failf "unexpected event in %s" line))
    (String.split_on_char '\n' jsonl)

let obs_jsonl () =
  let record () =
    let obs = Obs.create () in
    Obs.span obs ~cat:"demo" "outer" (fun () ->
        Obs.span obs "inner" (fun () -> Obs.count obs "widgets" 2);
        Obs.observe obs "sizes" 4.0);
    Obs.to_jsonl obs
  in
  let log = record () in
  Alcotest.(check string) "byte-identical across runs" log (record ());
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' log) in
  (match Json.of_string (List.hd lines) with
  | Ok j ->
      Alcotest.(check (option string)) "meta first" (Some "meta")
        (Option.bind (Json.member "ev" j) Json.get_string)
  | Error e -> Alcotest.failf "meta line: %s" e);
  let evs =
    List.filter_map
      (fun l ->
        match Json.of_string l with
        | Ok j -> Option.bind (Json.member "ev" j) Json.get_string
        | Error _ -> None)
      lines
  in
  Alcotest.(check int) "span begins" 2
    (List.length (List.filter (( = ) "span_begin") evs));
  Alcotest.(check int) "span ends" 2
    (List.length (List.filter (( = ) "span_end") evs));
  Alcotest.(check bool) "counter summary present" true
    (List.mem "counter" evs);
  Alcotest.(check bool) "histogram summary present" true
    (List.mem "histogram" evs)

(* --- the baseline gate --- *)

let doc makespan wall =
  Json.Obj
    [
      ("format", Json.Int 1);
      ( "workloads",
        Json.List
          [
            Json.Obj
              [
                ("workload", Json.String "w");
                ("nodes", Json.Int 7);
                ("makespan_seconds", Json.fixed makespan);
                ("wall_ms", Json.fixed wall);
              ];
          ] );
    ]

let baseline_tolerances () =
  let base = doc 100.0 5.0 in
  (* +10% makespan: fires *)
  let f = Baseline.compare_docs ~baseline:base ~current:(doc 110.0 5.0) in
  (match Baseline.regressions f with
  | [ r ] ->
      Alcotest.(check string) "path" "workloads[0].makespan_seconds"
        r.Baseline.f_path
  | l -> Alcotest.failf "expected 1 regression, got %d" (List.length l));
  (* +1%: within tolerance *)
  Alcotest.(check int) "+1%% passes" 0
    (List.length
       (Baseline.regressions
          (Baseline.compare_docs ~baseline:base ~current:(doc 101.0 5.0))));
  (* -10%: an improvement, never a failure *)
  let f = Baseline.compare_docs ~baseline:base ~current:(doc 90.0 5.0) in
  Alcotest.(check int) "improvement not a regression" 0
    (List.length (Baseline.regressions f));
  Alcotest.(check bool) "improvement reported" true
    (List.exists (fun x -> x.Baseline.f_verdict = Baseline.Improvement) f);
  (* wall_ms is informational: a 100x change is ignored *)
  Alcotest.(check int) "wall_ms ignored" 0
    (List.length (Baseline.compare_docs ~baseline:base ~current:(doc 100.0 500.0)))

let baseline_shapes () =
  let base = doc 100.0 5.0 in
  (* an exact-match metric changing fails the gate *)
  let renodes =
    match doc 100.0 5.0 with
    | Json.Obj [ f; ("workloads", Json.List [ Json.Obj fields ]) ] ->
        Json.Obj
          [
            f;
            ( "workloads",
              Json.List
                [
                  Json.Obj
                    (List.map
                       (fun (k, v) ->
                         if k = "nodes" then (k, Json.Int 8) else (k, v))
                       fields);
                ] );
          ]
    | _ -> Alcotest.fail "unexpected doc shape"
  in
  Alcotest.(check bool) "exact metric change is a failure" true
    (Baseline.regressions (Baseline.compare_docs ~baseline:base ~current:renodes)
    <> []);
  (* a missing field fails the gate *)
  let missing = Json.Obj [ ("format", Json.Int 1) ] in
  Alcotest.(check bool) "missing field is a failure" true
    (Baseline.regressions
       (Baseline.compare_docs ~baseline:base ~current:missing)
    <> [])

let json_fixed () =
  (* the canonical fixed-point formatter kills accumulated float noise *)
  Alcotest.(check string) "noise rounded" "14.36"
    (Json.to_string (Json.fixed 14.360000000000001));
  Alcotest.(check string) "microsecond grid" "0.000001"
    (Json.to_string (Json.fixed 1e-6));
  Alcotest.(check string) "decimals override" "3.142"
    (Json.to_string (Json.fixed ~decimals:3 3.14159))

let () =
  Alcotest.run "profile"
    [
      ( "critical path",
        [
          Alcotest.test_case "chain" `Quick chain;
          Alcotest.test_case "diamond" `Quick diamond;
          Alcotest.test_case "fan" `Quick fan;
          Alcotest.test_case "invalid inputs" `Quick bad_inputs;
          Alcotest.test_case "schedule attribution" `Quick
            schedule_attribution;
        ] );
      ( "installer schedules",
        [
          Alcotest.test_case "-j1 and -j∞ identities" `Quick
            installer_identities;
          Alcotest.test_case "fig10 suite batch" `Quick fig10_suite_batch;
          Alcotest.test_case "rendering determinism" `Quick
            rendering_determinism;
        ] );
      ( "structured events",
        [ Alcotest.test_case "Obs.to_jsonl" `Quick obs_jsonl ] );
      ( "baseline gate",
        [
          Alcotest.test_case "tolerances and directions" `Quick
            baseline_tolerances;
          Alcotest.test_case "shape changes fail" `Quick baseline_shapes;
          Alcotest.test_case "Json.fixed canonicalization" `Quick json_fixed;
        ] );
    ]
