(* Version ranges and lists: the constraint algebra behind @-constraints
   (paper §3.2.3, Fig. 3). *)

open Ospack_version

let v = Version.of_string
let vl = Vlist.of_string

let range_membership () =
  let mem ver body expected =
    Alcotest.(check bool)
      (Printf.sprintf "%s in @%s" ver body)
      expected
      (Vlist.mem (v ver) (vl body))
  in
  (* point constraints admit prefix extensions, like Spack *)
  mem "1.2" "1.2" true;
  mem "1.2.3" "1.2" true;
  mem "1.20" "1.2" false;
  mem "1.3" "1.2" false;
  (* ranges are inclusive *)
  mem "2.3" "2.3:" true;
  mem "2.2.9" "2.3:" false;
  mem "99" "2.3:" true;
  mem "2.5.6" "2.3:2.5.6" true;
  mem "2.5.6.1" "2.3:2.5.6" true;
  (* upper bounds are prefix-inclusive: :1.3 admits 1.3.9 *)
  mem "1.3.9" ":1.3" true;
  mem "1.4" ":1.3" false;
  (* unions *)
  mem "1.1.5" "1.1:1.2,1.6:" true;
  mem "1.4" "1.1:1.2,1.6:" false;
  mem "1.7" "1.1:1.2,1.6:" true

let intersection_cases () =
  let isect a b = Vlist.intersect (vl a) (vl b) in
  Alcotest.(check bool) "disjoint is empty" true (Vlist.is_empty (isect "1.0:1.5" "2.0:"));
  Alcotest.(check bool) "overlap nonempty" false (Vlist.is_empty (isect "1.0:2.0" "1.5:3.0"));
  (* the paper's gerris case: mpi@2: vs provided mpi@:1 must be empty *)
  Alcotest.(check bool) "gerris case" true (Vlist.is_empty (isect "2:" ":1"));
  (* prefix subtlety: :1.3 and 1.3.5: share 1.3.5..1.3.x *)
  let r = isect ":1.3" "1.3.5:" in
  Alcotest.(check bool) "prefix overlap nonempty" false (Vlist.is_empty r);
  Alcotest.(check bool) "1.3.7 in it" true (Vlist.mem (v "1.3.7") r);
  Alcotest.(check bool) "1.4 not in it" false (Vlist.mem (v "1.4") r)

let subset_cases () =
  let sub a b = Vlist.subset (vl a) (vl b) in
  Alcotest.(check bool) "narrow in wide" true (sub "1.2:1.4" "1.0:2.0");
  Alcotest.(check bool) "wide not in narrow" false (sub "1.0:2.0" "1.2:1.4");
  Alcotest.(check bool) "any includes point" true (Vlist.subset (vl "1.2") Vlist.any);
  Alcotest.(check bool) "finer hi bound" true (sub ":1.3.5" ":1.3");
  Alcotest.(check bool) "coarser hi bound" false (sub ":1.3" ":1.3.5");
  Alcotest.(check bool) "union member" true (sub "1.1" "1.0:1.5,2.0:")

let concreteness () =
  Alcotest.(check (option string)) "point is concrete" (Some "1.2")
    (Option.map Version.to_string (Vlist.concrete (vl "1.2")));
  Alcotest.(check (option string)) "range is not" None
    (Option.map Version.to_string (Vlist.concrete (vl "1.2:1.4")));
  Alcotest.(check (option string)) "any is not" None
    (Option.map Version.to_string (Vlist.concrete Vlist.any))

let printing () =
  let rt s = Vlist.to_string (vl s) in
  Alcotest.(check string) "point" "1.2" (rt "1.2");
  Alcotest.(check string) "range" "1.2:1.4" (rt "1.2:1.4");
  Alcotest.(check string) "open low" ":1.4" (rt ":1.4");
  Alcotest.(check string) "open high" "1.2:" (rt "1.2:");
  Alcotest.(check string) "merges overlap" "1.0:2.0" (rt "1.0:1.5,1.2:2.0");
  Alcotest.(check string) "keeps disjoint" "1.0:1.5,2.0:2.5" (rt "2.0:2.5,1.0:1.5")

let compare_sup_cases () =
  Alcotest.(check bool) "unbounded greatest" true
    (Vlist.compare_sup (vl "1.0:") (vl ":9999") > 0);
  Alcotest.(check bool) "higher endpoint" true
    (Vlist.compare_sup (vl ":3") (vl ":2.2") > 0);
  Alcotest.(check bool) "empty least" true
    (Vlist.compare_sup Vlist.empty (vl "1.0") < 0)

(* --- Vrange directly --- *)

let vrange_membership () =
  let open Ospack_version.Vrange in
  Alcotest.(check bool) "unbounded matches anything" true
    (mem (v "0.0.1") unbounded && mem (v "999") unbounded);
  Alcotest.(check bool) "empty range detected" true
    (is_empty (range (Some (v "2.0")) (Some (v "1.0"))));
  (* [1.3.5 : 1.3] is nonempty under prefix-inclusive upper bounds *)
  Alcotest.(check bool) "inverted-looking prefix range nonempty" false
    (is_empty (range (Some (v "1.3.5")) (Some (v "1.3"))));
  Alcotest.(check bool) "point is never empty" false
    (is_empty (point (v "1.0")))

let vrange_union () =
  let open Ospack_version.Vrange in
  (match
     union_if_overlapping
       (range (Some (v "1.0")) (Some (v "2.0")))
       (range (Some (v "1.5")) (Some (v "3.0")))
   with
  | Some u ->
      Alcotest.(check string) "union spans both" "1.0:3.0" (to_string u)
  | None -> Alcotest.fail "overlap expected");
  Alcotest.(check bool) "disjoint stays separate" true
    (union_if_overlapping
       (range (Some (v "1.0")) (Some (v "1.5")))
       (range (Some (v "2.0")) None)
    = None);
  (* union with an unbounded side *)
  match
    union_if_overlapping (range (Some (v "1.0")) None) (point (v "2.0"))
  with
  | Some u -> Alcotest.(check string) "open end kept" "1.0:" (to_string u)
  | None -> Alcotest.fail "overlap expected"

let vrange_printing () =
  let open Ospack_version.Vrange in
  Alcotest.(check string) "point" "1.2" (to_string (point (v "1.2")));
  Alcotest.(check string) "full" ":" (to_string unbounded);
  Alcotest.(check string) "degenerate range normalizes to point" "1.2"
    (to_string
       (match intersect (point (v "1.2")) unbounded with
       | Some r -> r
       | None -> Alcotest.fail "nonempty"))

(* --- exhaustive Vrange properties over a small version universe ---

   QCheck sampling above can miss the corners of the prefix-inclusive
   endpoint semantics; here we enumerate *every* range constructible from
   a small version universe and check the algebraic laws on all of them.
   The universe has two component values and a third level under 1.1 so
   that prefix extensions ([:1.1] admitting [1.1.2]) are exercised. *)

let universe_versions =
  List.map v [ "1"; "2"; "1.1"; "1.2"; "2.1"; "2.2"; "1.1.1"; "1.1.2" ]

let universe_ranges =
  let open Ospack_version.Vrange in
  let bounds = None :: List.map Option.some universe_versions in
  List.map point universe_versions
  @ List.concat_map
      (fun lo -> List.map (fun hi -> range lo hi) bounds)
      bounds

(* membership probes: the universe itself plus versions just outside it
   and deeper prefix extensions, so semantic equality checked over the
   probes distinguishes prefix-inclusive bounds from strict ones *)
let probes =
  List.map v
    [ "1"; "2"; "1.1"; "1.2"; "2.1"; "2.2"; "1.1.1"; "1.1.2";
      "0"; "3"; "0.9"; "1.3"; "2.9"; "1.10";
      "1.1.0"; "1.1.3"; "1.1.9"; "2.2.3"; "2.1.3";
      "1.1.1.5"; "1.1.2.9"; "1.2.9"; "2.2.1"; "2.1.0" ]

let sem_eq a b =
  let open Ospack_version.Vrange in
  List.for_all (fun x -> mem x a = mem x b) probes

let exhaustive_intersect_sound () =
  let open Ospack_version.Vrange in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let i = intersect a b in
          (match i with
          | Some r when is_empty r ->
              Alcotest.failf "intersect %s %s returned Some empty"
                (to_string a) (to_string b)
          | _ -> ());
          List.iter
            (fun x ->
              let got =
                match i with Some r -> mem x r | None -> false
              in
              if got <> (mem x a && mem x b) then
                Alcotest.failf "intersect %s %s wrong at %s" (to_string a)
                  (to_string b) (Version.to_string x))
            probes)
        universe_ranges)
    universe_ranges

let exhaustive_intersect_commutative () =
  let open Ospack_version.Vrange in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          match (intersect a b, intersect b a) with
          | None, None -> ()
          | Some r1, Some r2 when sem_eq r1 r2 -> ()
          | _ ->
              Alcotest.failf "intersect not commutative on %s / %s"
                (to_string a) (to_string b))
        universe_ranges)
    universe_ranges

let exhaustive_intersect_associative () =
  let open Ospack_version.Vrange in
  let ( >>= ) o f = Option.bind o f in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          let ab = intersect a b in
          List.iter
            (fun c ->
              let left = ab >>= fun r -> intersect r c in
              let right = intersect b c >>= fun r -> intersect a r in
              match (left, right) with
              | None, None -> ()
              | Some r1, Some r2 when sem_eq r1 r2 -> ()
              | _ ->
                  Alcotest.failf "intersect not associative on %s / %s / %s"
                    (to_string a) (to_string b) (to_string c))
            universe_ranges)
        universe_ranges)
    universe_ranges

let exhaustive_subset_is_intersect () =
  (* subset a b  ⟺  intersect a b = Some a, up to normalization *)
  let open Ospack_version.Vrange in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (is_empty a) then
            let by_intersect =
              match intersect a b with
              | Some r -> sem_eq r a
              | None -> false
            in
            if subset a b <> by_intersect then
              Alcotest.failf "subset %s %s = %b but intersect says %b"
                (to_string a) (to_string b) (subset a b) by_intersect)
        universe_ranges)
    universe_ranges

let exhaustive_union_sound () =
  let open Ospack_version.Vrange in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          if not (is_empty a || is_empty b) then
            match union_if_overlapping a b with
            | Some u ->
                List.iter
                  (fun x ->
                    if mem x u <> (mem x a || mem x b) then
                      Alcotest.failf
                        "union_if_overlapping %s %s wrong at %s"
                        (to_string a) (to_string b) (Version.to_string x))
                  probes
            | None ->
                List.iter
                  (fun x ->
                    if mem x a && mem x b then
                      Alcotest.failf
                        "union_if_overlapping %s %s claims disjoint but \
                         share %s"
                        (to_string a) (to_string b) (Version.to_string x))
                  probes)
        universe_ranges)
    universe_ranges

let prefix_inclusive_endpoints () =
  let open Ospack_version.Vrange in
  (* the paper's prefix-inclusive reading of open-ended constraints *)
  Alcotest.(check bool) "1.4: admits 1.4.2" true
    (mem (v "1.4.2") (range (Some (v "1.4")) None));
  Alcotest.(check bool) ":1.4 admits 1.4.9" true
    (mem (v "1.4.9") (range None (Some (v "1.4"))));
  Alcotest.(check bool) "1.4: rejects 1.3.9" false
    (mem (v "1.3.9") (range (Some (v "1.4")) None));
  Alcotest.(check bool) ":1.4 rejects 1.5" false
    (mem (v "1.5") (range None (Some (v "1.4"))));
  (* and the same through the Vlist parser *)
  Alcotest.(check bool) "@1.4: admits 1.4.2" true
    (Vlist.mem (v "1.4.2") (vl "1.4:"));
  Alcotest.(check bool) "@:1.4 admits 1.4.9" true
    (Vlist.mem (v "1.4.9") (vl ":1.4"))

(* --- properties --- *)

let version_gen =
  QCheck.Gen.(
    map (String.concat ".")
      (list_size (int_range 1 3) (map string_of_int (int_bound 12))))

let range_gen =
  QCheck.Gen.(
    oneof
      [
        map (fun s -> s) version_gen;
        map2 (fun a b -> a ^ ":" ^ b) version_gen version_gen;
        map (fun s -> s ^ ":") version_gen;
        map (fun s -> ":" ^ s) version_gen;
      ])

let vlist_gen =
  QCheck.Gen.(map (String.concat ",") (list_size (int_range 1 3) range_gen))

let arb_vlist =
  QCheck.make ~print:(fun s -> s) vlist_gen

let arb_ver = QCheck.make ~print:(fun s -> s) version_gen

let intersect_sound =
  QCheck.Test.make ~name:"mem (intersect a b) = mem a && mem b" ~count:500
    (QCheck.triple arb_vlist arb_vlist arb_ver)
    (fun (a, b, x) ->
      let la = vl a and lb = vl b and ver = v x in
      Vlist.mem ver (Vlist.intersect la lb)
      = (Vlist.mem ver la && Vlist.mem ver lb))

let union_sound =
  QCheck.Test.make ~name:"mem (union a b) = mem a || mem b" ~count:500
    (QCheck.triple arb_vlist arb_vlist arb_ver)
    (fun (a, b, x) ->
      let la = vl a and lb = vl b and ver = v x in
      Vlist.mem ver (Vlist.union la lb)
      = (Vlist.mem ver la || Vlist.mem ver lb))

let subset_sound =
  QCheck.Test.make ~name:"subset a b && mem a x => mem b x" ~count:500
    (QCheck.triple arb_vlist arb_vlist arb_ver)
    (fun (a, b, x) ->
      let la = vl a and lb = vl b and ver = v x in
      (not (Vlist.subset la lb)) || (not (Vlist.mem ver la)) || Vlist.mem ver lb)

let intersect_commutes =
  QCheck.Test.make ~name:"intersect commutative" ~count:300
    (QCheck.pair arb_vlist arb_vlist)
    (fun (a, b) ->
      Vlist.equal (Vlist.intersect (vl a) (vl b)) (Vlist.intersect (vl b) (vl a)))

let intersect_idempotent =
  QCheck.Test.make ~name:"intersect idempotent" ~count:300 arb_vlist
    (fun a -> Vlist.equal (vl a) (Vlist.intersect (vl a) (vl a)))

let any_identity =
  QCheck.Test.make ~name:"any is identity for intersect" ~count:300 arb_vlist
    (fun a -> Vlist.equal (vl a) (Vlist.intersect (vl a) Vlist.any))

let () =
  Alcotest.run "vlist"
    [
      ( "semantics",
        [
          Alcotest.test_case "membership" `Quick range_membership;
          Alcotest.test_case "intersection" `Quick intersection_cases;
          Alcotest.test_case "subset" `Quick subset_cases;
          Alcotest.test_case "concreteness" `Quick concreteness;
          Alcotest.test_case "printing" `Quick printing;
          Alcotest.test_case "compare_sup" `Quick compare_sup_cases;
        ] );
      ( "vrange",
        [
          Alcotest.test_case "membership and emptiness" `Quick
            vrange_membership;
          Alcotest.test_case "union" `Quick vrange_union;
          Alcotest.test_case "printing" `Quick vrange_printing;
          Alcotest.test_case "prefix-inclusive endpoints" `Quick
            prefix_inclusive_endpoints;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "intersect sound" `Quick
            exhaustive_intersect_sound;
          Alcotest.test_case "intersect commutative" `Quick
            exhaustive_intersect_commutative;
          Alcotest.test_case "intersect associative" `Quick
            exhaustive_intersect_associative;
          Alcotest.test_case "subset is intersect-identity" `Quick
            exhaustive_subset_is_intersect;
          Alcotest.test_case "union_if_overlapping sound" `Quick
            exhaustive_union_sound;
        ] );
      ( "properties",
        [
          QCheck_alcotest.to_alcotest intersect_sound;
          QCheck_alcotest.to_alcotest union_sound;
          QCheck_alcotest.to_alcotest subset_sound;
          QCheck_alcotest.to_alcotest intersect_commutes;
          QCheck_alcotest.to_alcotest intersect_idempotent;
          QCheck_alcotest.to_alcotest any_identity;
        ] );
    ]
