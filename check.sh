#!/bin/sh
# Tier-1 gate: full build, full test suite, and the no-committed-artifacts
# invariant, in one command (see README "CI").
set -eu

cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all 2>&1

echo "== dune runtest"
dune runtest

echo "== checking for stray _build files in git"
# nothing under _build/ may be tracked, and none may appear in git status
# (deletions are fine — that is _build being purged, not committed)
stray=$( { git ls-files _build;
           git status --porcelain -- _build | grep -v '^ \?D' | awk '{print $2}'; } \
         | sort -u )
if [ -n "$stray" ]; then
    echo "error: _build/ artifacts visible to git (is .gitignore intact?):" >&2
    echo "$stray" | head >&2
    exit 1
fi

echo "OK"
