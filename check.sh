#!/bin/sh
# Tier-1 gate: full build, full test suite, and the no-committed-artifacts
# invariant, in one command (see README "CI").
set -eu

cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all 2>&1

echo "== dune runtest"
dune runtest

echo "== obs smoke: trace a small install, validate it, regenerate BENCH_obs.json"
# the trace must parse as Chrome trace-event JSON, contain the expected
# phase spans, and be byte-identical across two runs (virtual clock only)
obs_tmp=_build/obs-smoke
mkdir -p "$obs_tmp"
./_build/default/bin/spack.exe install --trace "$obs_tmp/trace1.json" libdwarf > /dev/null
./_build/default/bin/spack.exe install --trace "$obs_tmp/trace2.json" libdwarf > /dev/null
cmp "$obs_tmp/trace1.json" "$obs_tmp/trace2.json"
./_build/default/bin/spack.exe trace-validate "$obs_tmp/trace1.json" \
    --expect concretize --expect build.stage --expect build.configure \
    --expect build.compile --expect build.link --expect build.install \
    --expect "install libdwarf"
./_build/default/bench/main.exe obs BENCH_obs.json

echo "== checking for stray _build files in git"
# nothing under _build/ may be tracked, and none may appear in git status
# (deletions are fine — that is _build being purged, not committed)
stray=$( { git ls-files _build;
           git status --porcelain -- _build | grep -v '^ \?D' | awk '{print $2}'; } \
         | sort -u )
if [ -n "$stray" ]; then
    echo "error: _build/ artifacts visible to git (is .gitignore intact?):" >&2
    echo "$stray" | head >&2
    exit 1
fi

echo "OK"
