#!/bin/sh
# Tier-1 gate: full build, full test suite, and the no-committed-artifacts
# invariant, in one command (see README "CI").
set -eu

cd "$(dirname "$0")"

echo "== dune build @all"
dune build @all 2>&1

echo "== dune runtest"
dune runtest

echo "== obs smoke: trace a small install, validate it, check BENCH_obs.json"
# the trace must parse as Chrome trace-event JSON, contain the expected
# phase spans, and be byte-identical across two runs (virtual clock only)
obs_tmp=_build/obs-smoke
mkdir -p "$obs_tmp"
./_build/default/bin/spack.exe install --trace "$obs_tmp/trace1.json" libdwarf > /dev/null
./_build/default/bin/spack.exe install --trace "$obs_tmp/trace2.json" libdwarf > /dev/null
cmp "$obs_tmp/trace1.json" "$obs_tmp/trace2.json"
./_build/default/bin/spack.exe trace-validate "$obs_tmp/trace1.json" \
    --expect concretize --expect build.stage --expect build.configure \
    --expect build.compile --expect build.link --expect build.install \
    --expect "install libdwarf"
# the committed baseline must match a fresh run within the per-metric
# tolerance policy (bench --check never writes; re-baselining is an
# explicit `bench obs --update-baselines`)
./_build/default/bench/main.exe obs --check > /dev/null

echo "== profile smoke: critical-path report and JSONL log deterministic at every -j"
# `spack profile` must produce a byte-identical report and structured
# event log across repeated runs, serial and parallel, and the JSONL log
# must validate (balanced spans, monotone timestamps, profile.* events)
prof_tmp=_build/profile-smoke
mkdir -p "$prof_tmp"
for j in 1 4; do
    ./_build/default/bin/spack.exe profile -j "$j" --events "$prof_tmp/ev.jsonl" mpileaks > "$prof_tmp/report-a.txt"
    cp "$prof_tmp/ev.jsonl" "$prof_tmp/ev-a.jsonl"
    ./_build/default/bin/spack.exe profile -j "$j" --events "$prof_tmp/ev.jsonl" mpileaks > "$prof_tmp/report-b.txt"
    cmp "$prof_tmp/report-a.txt" "$prof_tmp/report-b.txt"
    cmp "$prof_tmp/ev-a.jsonl" "$prof_tmp/ev.jsonl"
done
./_build/default/bin/spack.exe trace-validate "$prof_tmp/ev-a.jsonl" \
    --expect concretize --expect install --expect mpileaks
grep -q '"ev":"profile.summary"' "$prof_tmp/ev-a.jsonl"
# the slack table surfaces through `spack stats --slack` too
./_build/default/bin/spack.exe stats --slack mpileaks | grep -q 'cp efficiency'

echo "== bench regression gate: --check passes on baselines, fires on +10% injected cost"
# an injected +10% per-node cost (a uniform scaling of the deterministic
# schedule) must fail the gate; the unperturbed run must pass
if ./_build/default/bench/main.exe parallel --check --inject-cost-pct 10 > "$prof_tmp/inject.out" 2>&1; then
    echo "error: bench --check did not catch a +10% cost injection" >&2
    exit 1
fi
grep -q 'REGRESSION' "$prof_tmp/inject.out"

echo "== parallel smoke: -j4 deterministic, store identical to -j1, check BENCH_parallel.json"
# the parallel scheduler must be deterministic (two -j4 runs byte-identical,
# trace included) and must leave exactly the store a serial install leaves
par_tmp=_build/parallel-smoke
mkdir -p "$par_tmp"
./_build/default/bin/spack.exe install -j 4 --trace "$par_tmp/trace1.json" \
    --index-out "$par_tmp/index-j4a.json" mpileaks > /dev/null
./_build/default/bin/spack.exe install -j 4 --trace "$par_tmp/trace2.json" \
    --index-out "$par_tmp/index-j4b.json" mpileaks > /dev/null
./_build/default/bin/spack.exe install -j 1 \
    --index-out "$par_tmp/index-j1.json" mpileaks > /dev/null
cmp "$par_tmp/trace1.json" "$par_tmp/trace2.json"
cmp "$par_tmp/index-j4a.json" "$par_tmp/index-j4b.json"
cmp "$par_tmp/index-j1.json" "$par_tmp/index-j4a.json"
./_build/default/bench/main.exe parallel --check > /dev/null

echo "== ccache smoke: cold == warm == --fresh byte-for-byte, warm hits > 0, check BENCH_concretize.json"
# the concretization cache must be observationally invisible: a cold run,
# a warm run against the persisted cache, and a --fresh run must print
# byte-identical concrete specs; the warm run must report cache hits
cc_tmp=_build/ccache-smoke
mkdir -p "$cc_tmp"
rm -f "$cc_tmp/ccache.json"
./_build/default/bin/spack.exe spec --ccache "$cc_tmp/ccache.json" mpileaks > "$cc_tmp/cold.out"
./_build/default/bin/spack.exe spec --ccache "$cc_tmp/ccache.json" mpileaks > "$cc_tmp/warm.out"
./_build/default/bin/spack.exe spec --fresh mpileaks > "$cc_tmp/fresh.out"
cmp "$cc_tmp/cold.out" "$cc_tmp/warm.out"
cmp "$cc_tmp/cold.out" "$cc_tmp/fresh.out"
rm -f "$cc_tmp/stats-ccache.json"
./_build/default/bin/spack.exe stats --ccache "$cc_tmp/stats-ccache.json" libdwarf > "$cc_tmp/stats-cold.out"
./_build/default/bin/spack.exe stats --ccache "$cc_tmp/stats-ccache.json" libdwarf > "$cc_tmp/stats-warm.out"
grep -q '^ccache\.misses  *1$' "$cc_tmp/stats-cold.out"
warm_hits=$(awk '/^ccache\.hits/ {print $2}' "$cc_tmp/stats-warm.out")
if [ -z "$warm_hits" ] || [ "$warm_hits" -lt 1 ]; then
    echo "error: warm run reported no ccache hits" >&2
    exit 1
fi
# the bench asserts byte-identity and the >=5x iteration reduction over
# the whole 21-workload suite
./_build/default/bench/main.exe concretize --check > /dev/null

echo "== solve smoke: clause backend solves what greedy cannot, deterministically; check BENCH_solve.json"
# the §4.5 divergence spec: greedy must dead-end with a blocked decision
# path, the clause backend must solve it (through openmpi) with
# byte-identical output across runs; a true conflict must produce an
# unsat core on the clause backend
sv_tmp=_build/solve-smoke
mkdir -p "$sv_tmp"
div_spec="mpileaks ^mpi+hwloc ^hwloc@1.9"
if ./_build/default/bin/spack.exe solve $div_spec > "$sv_tmp/greedy.out" 2>&1; then
    echo "error: greedy unexpectedly solved the divergence spec" >&2
    exit 1
fi
grep -q 'blocked decision path (greedy backend):' "$sv_tmp/greedy.out"
./_build/default/bin/spack.exe solve --concretizer clauses $div_spec > "$sv_tmp/clauses1.out"
./_build/default/bin/spack.exe solve --concretizer clauses $div_spec > "$sv_tmp/clauses2.out"
cmp "$sv_tmp/clauses1.out" "$sv_tmp/clauses2.out"
grep -q 'openmpi' "$sv_tmp/clauses1.out"
if ./_build/default/bin/spack.exe solve --concretizer clauses "gerris ^mpich@1.4" > "$sv_tmp/unsat.out" 2>&1; then
    echo "error: clause backend solved an unsatisfiable spec" >&2
    exit 1
fi
grep -q 'unsat core (clauses backend):' "$sv_tmp/unsat.out"
# the bench asserts byte-identical backend agreement over the whole
# 21-workload suite plus the divergence/unsat contract
./_build/default/bench/main.exe solve --check > /dev/null

echo "== store smoke: crash-consistency torture at sampled kill points, check BENCH_store.json"
# the torture command kills an install at filesystem write barriers,
# recovers the store with a fresh installer, and verifies the reloaded
# index is a prefix of the completed store with no unindexed orphans;
# sampled here (every 13th barrier, serial and -j4) — the full
# every-boundary sweep runs in the test suite (test_torture)
st_tmp=_build/store-smoke
mkdir -p "$st_tmp"
./_build/default/bin/spack.exe torture --every 13 mpileaks > "$st_tmp/torture-j1.out"
grep -q 'kill point' "$st_tmp/torture-j1.out"
./_build/default/bin/spack.exe torture -j 4 --every 13 mpileaks > "$st_tmp/torture-j4.out"
grep -q 'kill point' "$st_tmp/torture-j4.out"
# the bench asserts sharded index traffic beats the legacy whole-file
# rewrite and that a single-recipe edit leaves unrelated ccache entries
# live (per-entry Merkle invalidation)
./_build/default/bench/main.exe store --check > /dev/null

echo "== buildcache smoke: fleet trace deterministic, splice verified, check BENCH_buildcache.json"
# the mirror-fleet trace is seeded and runs on the virtual clock, so two
# generations of the document must be byte-identical; splicing a cached
# dyninst onto libelf@0.8.12 must recompute the hash and pass the
# empty-environment loader verification
bc_tmp=_build/buildcache-smoke
mkdir -p "$bc_tmp"
./_build/default/bench/main.exe buildcache "$bc_tmp/doc1.json" > /dev/null
./_build/default/bench/main.exe buildcache "$bc_tmp/doc2.json" > /dev/null
cmp "$bc_tmp/doc1.json" "$bc_tmp/doc2.json"
./_build/default/bin/spack.exe splice dyninst --replace libelf@0.8.12 > "$bc_tmp/splice.out"
grep -q 'spliced hash differs' "$bc_tmp/splice.out"
grep -q 'loader verified' "$bc_tmp/splice.out"
# the bench asserts the full accounting: hits + source builds cover the
# trace, every recovery path fires, and the zipf skew shows
./_build/default/bench/main.exe buildcache --check > /dev/null

echo "== env smoke: unified solve -j4, lockfile replay byte-identical, stale lock refused, check BENCH_env.json"
# process 1 solves an environment fresh and exports its lockfile and
# store index; process 2 (an empty store) imports the lockfile, replays
# it with install_locked, and must end at a byte-identical index;
# process 3 layers a drifted site config and must refuse the same
# lockfile with a typed staleness error, installing nothing
env_tmp=_build/env-smoke
mkdir -p "$env_tmp"
cat > "$env_tmp/solve.spack" <<EOF
env-create apps /opt/apps
env-add apps lulesh +openmp
env-add apps hpccg
env-install apps -j 4
env-status apps
env-lock-export apps $env_tmp/lock.json
index-export $env_tmp/index-solve.json
EOF
cat > "$env_tmp/replay.spack" <<EOF
env-create apps /opt/apps
env-add apps lulesh +openmp
env-add apps hpccg
env-lock-import apps $env_tmp/lock.json
env-install-locked apps -j 4
index-export $env_tmp/index-replay.json
EOF
cat > "$env_tmp/stale.spack" <<EOF
env-create apps /opt/apps
env-add apps lulesh +openmp
env-add apps hpccg
env-lock-import apps $env_tmp/lock.json
env-install-locked apps -j 4
index-export $env_tmp/index-stale.json
EOF
./_build/default/bin/spack.exe script "$env_tmp/solve.spack" > "$env_tmp/solve.out"
grep -q 'lockfile written' "$env_tmp/solve.out"
./_build/default/bin/spack.exe script "$env_tmp/replay.spack" > "$env_tmp/replay.out"
grep -q 'lockfile replayed' "$env_tmp/replay.out"
# the solve store and the replay store agree record for record
cmp "$env_tmp/index-solve.json" "$env_tmp/index-replay.json"
printf 'site.name = elsewhere\n' > "$env_tmp/drifted.conf"
if ./_build/default/bin/spack.exe script --config "$env_tmp/drifted.conf" \
       "$env_tmp/stale.spack" > "$env_tmp/stale.out" 2>&1; then
    echo "error: a stale lockfile replayed under a drifted config" >&2
    exit 1
fi
grep -q 'stale' "$env_tmp/stale.out"
grep -q '"records": \[\]' "$env_tmp/index-stale.json"
# the env lifecycle survives a kill at every 7th filesystem barrier
./_build/default/bin/spack.exe torture --env --every 7 libdwarf gsl > "$env_tmp/torture.out"
grep -q 'kill point' "$env_tmp/torture.out"
# the bench asserts byte-identical solve-vs-replay stores/indexes/views,
# the typed staleness refusal, and closure-exact shared-store views
./_build/default/bench/main.exe env --check > /dev/null

echo "== checking for stray _build files in git"
# nothing under _build/ may be tracked, and none may appear in git status
# (deletions are fine — that is _build being purged, not committed)
stray=$( { git ls-files _build;
           git status --porcelain -- _build | grep -v '^ \?D' | awk '{print $2}'; } \
         | sort -u )
if [ -n "$stray" ]; then
    echo "error: _build/ artifacts visible to git (is .gitignore intact?):" >&2
    echo "$stray" | head >&2
    exit 1
fi

echo "OK"
