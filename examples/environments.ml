(* Environments: a manifest of root specs solved together — the
   composition of the paper's machinery (unified concretization, hashed
   installs, lockfile provenance like §3.4.3, merged views like §4.3.1)
   into the workflow HPC teams actually run: one solve, a committed
   lockfile, reproducible activation.

   Run with: dune exec examples/environments.exe *)

module Environment = Ospack.Environment
module Concrete = Ospack_spec.Concrete
module Database = Ospack_store.Database
module Installer = Ospack_store.Installer
module Vfs = Ospack_vfs.Vfs

let section title = Printf.printf "\n=== %s ===\n%!" title

let ok = function
  | Ok x -> x
  | Error e ->
      prerr_endline e;
      exit 1

let () =
  let ctx = Ospack.Context.create () in

  section "Create a 'tools' environment with a merged view";
  let env = ok (Environment.create ctx ~name:"tools" ~view:"/opt/tools" ()) in
  let env = ok (Environment.add ctx env "stat +gui") in
  let env = ok (Environment.add ctx env "mpileaks ^mvapich2@1.9") in
  let env = ok (Environment.add ctx env "tau") in
  List.iter
    (fun (root, installed) ->
      Printf.printf "  %-28s installed=%b\n" root installed)
    (Environment.status ctx env);

  section "Install: one unified solve, one parallel install (-j 4)";
  let report = ok (Environment.install ~jobs:4 ctx env) in
  List.iter
    (fun (root, c) ->
      Printf.printf "  %-28s -> %s (%d nodes)\n" root
        (Concrete.node_to_string (Concrete.root_node c))
        (Concrete.node_count c))
    report.Environment.er_roots;
  let outcomes = report.Environment.er_report.Installer.pr_outcomes in
  let built =
    List.length (List.filter (fun o -> not o.Installer.o_reused) outcomes)
  in
  Printf.printf
    "  merged environment DAG: %d nodes built (shared sub-DAGs solved and \
     installed once), %d files linked into the view\n"
    built report.Environment.er_linked;
  List.iter
    (fun (root, installed) ->
      Printf.printf "  %-28s installed=%b\n" root installed)
    (Environment.status ctx env);

  section "The merged view is one usable tree";
  (match Vfs.ls ctx.Ospack.Context.vfs "/opt/tools/bin" with
  | Ok entries ->
      Printf.printf "/opt/tools/bin: %d tools (%s ...)\n" (List.length entries)
        (String.concat " "
           (List.filteri (fun i _ -> i < 6) entries))
  | Error _ -> ());

  section "The lockfile records the exact concrete DAGs, fingerprinted";
  let lock = Result.get_ok (Environment.read_lock ctx env) in
  Printf.printf "context fingerprint %s..\n"
    (String.sub lock.Environment.lk_fingerprint 0 12);
  List.iter
    (fun (_, c) ->
      Printf.printf "  %s (%d nodes, hash %s)\n"
        (Concrete.node_to_string (Concrete.root_node c))
        (Concrete.node_count c) (Concrete.root_hash c))
    lock.Environment.lk_specs;

  section "Wipe the store; replay the lockfile byte-for-byte";
  let db = Installer.database ctx.Ospack.Context.installer in
  List.iter
    (fun (r : Database.record) ->
      if r.Database.r_explicit then
        ignore (Ospack.uninstall ctx ("/" ^ r.Database.r_hash)))
    (Database.all db);
  ignore (ok (Ospack.gc ctx));
  Printf.printf "store after gc: %d records\n" (Database.count db);
  let replay =
    match Environment.install_locked ~jobs:4 ctx env with
    | Ok r -> r
    | Error e ->
        prerr_endline (Environment.locked_error_to_string e);
        exit 1
  in
  Printf.printf
    "locked replay reinstalled %d roots; store back to %d records\n"
    (List.length replay.Environment.er_roots)
    (Database.count db);
  List.iter
    (fun (root, c) ->
      Printf.printf "  %-28s lock %s installed=%b\n" root
        (Concrete.root_hash c)
        (Database.find_by_hash db (Concrete.root_hash c) <> None))
    replay.Environment.er_roots
